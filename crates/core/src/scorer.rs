//! Fast per-(task, machine) robustness scoring with *incremental* machine-
//! tail caching and a per-machine parallel fan-out.
//!
//! A mapping event evaluates every batch task against every machine. The
//! naive approach performs a full Eq. 3–4 convolution per pair; this module
//! exploits that PAM/MOC only need two scalars per pair:
//!
//! * **robustness** `Σ_{u<δ} A(u) · CDF_E(δ − u)` — the deadline CDF of the
//!   (deadline-truncated) convolution, computable directly from the
//!   machine-tail availability `A` and a prefix-sum CDF of the PET cell
//!   `E` without materializing the convolution;
//! * **expected completion** `Σ_{u<δ} A(u)·(u + E[E]) / Σ_{u<δ} A(u)` —
//!   the mean of the truncated convolution, again in closed form.
//!
//! Both are *exact* (they equal [`hcsim_pmf::queue_step`]'s outputs, minus
//! the compaction error that full convolution would introduce; a unit test
//! asserts the equivalence).
//!
//! # Incremental tail maintenance
//!
//! The machine-tail availability is the only convolution work left, and it
//! is maintained *incrementally* across mapping events rather than rebuilt
//! from `Pmf::delta(now)` at every version bump. Each machine's
//! [`MachineCache`] holds two layers:
//!
//! 1. a **conditioned head** — the executing task's residual-execution
//!    availability, which depends on `now` and is therefore recomputed
//!    whenever the event time moves;
//! 2. a **pending chain** — one availability PMF per pending queue entry,
//!    chained by [`hcsim_pmf::queue_step_into`]. On a queue mutation the
//!    cache matches the *longest common prefix* of the cached entry
//!    signatures `(task id, progress)` against the live queue and
//!    reconvolves only the suffix: appending a task (the mapper's
//!    assignment loop) costs one `queue_step`; dropping a mid-queue task
//!    (the pruner) reuses everything ahead of it. Eviction, preemption, or
//!    a new event time fall back to a full rebuild.
//!
//! Because the incremental path replays exactly the operations a
//! from-scratch [`analyze_queue`] would perform — in the same order, with
//! the same compaction budget — cached tails are bit-identical to
//! from-scratch analysis (a replay proptest in `tests/` asserts this).
//! All intermediate storage is drawn from a per-machine [`ConvScratch`]
//! pool, so the steady-state scoring loop allocates nothing per
//! (task, machine) pair.
//!
//! # Parallel per-machine fan-out
//!
//! Each [`MachineCache`] is a self-contained mutable cell: its chain, its
//! slot statistics, its column scratch, *and* its convolution scratch
//! pool. That is what lets [`ScoreTable::rebuild`] and
//! [`ProbScorer::warm_caches`] fan the per-machine work out across worker
//! threads with no locking contention: every worker owns a disjoint set of
//! machine cells, and results merge in machine-index order. Because every
//! per-machine computation is deterministic in the machine's state alone
//! (the replay-equivalence invariant above), the fan-out is
//! **bit-identical** to sequential evaluation at any thread count —
//! `threads` is purely a performance knob. Small fan-outs fall back to a
//! single thread (see [`PARALLEL_MIN_MACHINES`]) so fan-out overhead never
//! lands on the small-cluster hot path.
//!
//! Two fan-out engines exist, selected by [`FanoutBackend`] via
//! [`ProbScorer::set_parallelism`]:
//!
//! * **scoped** ([`hcsim_parallel::parallel_for_each_mut`]) — threads are
//!   spawned and joined inside every fan-out, borrowing the cells. Simple,
//!   but pays ~7–15 µs of spawn tax per thread per fan-out, several times
//!   per event.
//! * **pool** ([`hcsim_parallel::WorkerPool`], the default at cluster
//!   scale) — the machine cells *move into* a persistent pool whose
//!   workers own one shard each for the lifetime of the scorer; a fan-out
//!   becomes a request/response round over channels. Per-round inputs
//!   (machine snapshots, the live window rows) cross the channel as
//!   pooled `Arc` buffers, so the steady state stays allocation-free.
//!   Between rounds the scorer reaches individual cells through the
//!   pool's shared handle ([`hcsim_parallel::WorkerPool::with_cell`]),
//!   which is what keeps single-machine requests — a column refresh after
//!   an assignment, a pruner slot query after a drop — at direct-call
//!   cost instead of a channel round-trip.

use crate::chain::{analyze_queue_cold, PetTables, QueueAnalysis};
use hcsim_model::{MachineId, PetMatrix, SystemSpec, Task, TaskId, TaskTypeId, Time};
use hcsim_parallel::{parallel_for_each_mut, FanoutBackend, WorkerPool};
use hcsim_pmf::{queue_step_into, ConvScratch, DropPolicy, Pmf};
use hcsim_sim::MachineState;
use std::sync::Arc;

/// Minimum number of active per-machine jobs before a fan-out actually
/// goes parallel (and minimum cluster size before the worker pool is
/// built). Below this the fan-out overhead (channel round-trips for the
/// pool, tens of microseconds of spawns for scoped threads) exceeds the
/// work itself on paper-sized clusters (8 machines), so the fan-out
/// degenerates to the sequential path — which produces bit-identical
/// results by construction.
pub const PARALLEL_MIN_MACHINES: usize = 16;

/// Machines per [`ScoreTable`] shard. The table's bound pass works on
/// shard-level *envelope* bounds first and only descends into shards that
/// can clear the caller's threshold, so per-row bound work is
/// O(machines / width) instead of O(machines) for the (dominant, under
/// oversubscription) provably-deferred rows. Deliberately independent of
/// the thread count: shard boundaries affect only which *aggregates* are
/// consulted, never any exact score, so results stay bit-identical across
/// thread counts and backends — but a deterministic width also keeps the
/// aggregate layout itself reproducible. 32 puts a 1024-machine cluster
/// at 32 shards (bound sweep and phase-2 reduction both 32× narrower)
/// while an 8-machine paper system degenerates to a single shard.
pub const TABLE_SHARD_WIDTH: usize = 32;

/// The two scalars phase 1/2 of the probabilistic heuristics consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScore {
    /// Eq. 1 robustness of appending the task to the machine's queue.
    pub robustness: f64,
    /// Expected completion time given the task starts (infinite when it
    /// can never start before its deadline).
    pub expected_completion: f64,
    /// Expected execution time of the task on this machine (the paper's
    /// tie-breaker).
    pub mean_exec: f64,
}

/// Per-slot robustness/skewness of a queued task — the pruner's view of a
/// machine queue, served from the incremental cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotScore {
    /// The task occupying the slot.
    pub task: Task,
    /// Queue position κ: 0 is the executing task (or the first pending
    /// task on an idle-but-nonempty queue snapshot).
    pub position: usize,
    /// Eq. 1 robustness of completing by the deadline.
    pub robustness: f64,
    /// Eq. 6 bounded skewness of the completion PMF (0 when the task can
    /// never start).
    pub skewness: f64,
}

/// Prefix-CDF view of one PET cell.
#[derive(Debug, Clone)]
struct PetCdf {
    times: Vec<Time>,
    /// `prefix[i]` = total mass at `times[..=i]`.
    prefix: Vec<f64>,
    mean: f64,
}

impl PetCdf {
    fn build(pmf: &Pmf) -> Self {
        let times: Vec<Time> = pmf.times().to_vec();
        let mut acc = 0.0;
        let prefix = pmf
            .masses()
            .iter()
            .map(|&p| {
                acc += p;
                acc
            })
            .collect();
        Self { times, prefix, mean: pmf.mean() }
    }

    /// Mass at execution times `<= t`.
    #[inline]
    fn cdf_at(&self, t: Time) -> f64 {
        let idx = self.times.partition_point(|&x| x <= t);
        if idx == 0 {
            0.0
        } else {
            self.prefix[idx - 1]
        }
    }
}

/// Identity of one pending queue entry, as far as the chain math cares:
/// the task id pins (type, deadline); `progress` pins the residual PET.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingSig {
    id: TaskId,
    progress: Time,
}

/// One machine's cached availability chain (see module docs).
#[derive(Debug, Default)]
struct TailCache {
    valid: bool,
    /// Machine version the cache reflects.
    version: u64,
    /// Warm-container revision the cache reflects
    /// ([`MachineState::warm_rev`]). The head-reuse path deliberately
    /// ignores `version` (a queue append bumps it without invalidating the
    /// prefix), but a warm-set change *does* re-select PET cells for the
    /// whole chain — this separate key forces the rebuild. Constant 0 in
    /// the classic model, so the check never fires there.
    warm_rev: u64,
    /// Event time the conditioned head was computed at.
    now: Time,
    /// Executing-task identity: `(id, started_at, progress_before)`.
    /// Together with `now` this fully determines the conditioned head.
    exec_sig: Option<(TaskId, Time, Time)>,
    /// Signatures of the pending entries the chain was built over.
    pending_sig: Vec<PendingSig>,
    /// Layer 1: availability after the executing task (or `delta(now)`);
    /// `None` only before the first build.
    head: Option<Pmf>,
    /// Layer 2: availability after each pending entry; the machine tail is
    /// `links.last()` (or `head` when no tasks are pending).
    links: Vec<Pmf>,
    /// Per-slot robustness/skewness, head first — the pruner's view.
    slots: Vec<SlotScore>,
    /// True when every slot's skewness is populated. Skewness is only
    /// needed by the pruner and costs a moment pass over the *uncompacted*
    /// completion PMF, so tail/score extensions skip it (leaving NaN
    /// placeholders) and [`ProbScorer::slot_scores`] rebuilds in stats
    /// mode on demand.
    stats_valid: bool,
}

impl TailCache {
    /// Only called after `ensure`, which always populates the head.
    fn tail(&self) -> &Pmf {
        self.links.last().or(self.head.as_ref()).expect("cache built before query")
    }
}

/// The scorer state shared *read-only* across every machine cell during a
/// fan-out: the drop policy, the compaction budget, and the prefix CDFs of
/// every PET cell. Immutable after construction, so one `Arc` serves both
/// the caller and the pool workers; the per-event clock travels separately
/// (it changes every event).
#[derive(Debug)]
struct ScorerShared {
    policy: DropPolicy,
    budget: usize,
    /// Prefix CDFs, row-major `(task_type, machine)`, built once.
    cdfs: Vec<PetCdf>,
    /// Cold-placement prefix CDFs (spin-up ⊛ execution cells), same
    /// layout; `None` in the classic HC model where every start is warm.
    cold_cdfs: Option<Vec<PetCdf>>,
    machines: usize,
    /// Shard envelope CDFs, row-major `(task_type, shard)`: the pointwise
    /// max of the shard members' prefix CDFs. `CDF_env(t) ≥ CDF_m(t)` for
    /// every member `m`, so a shard-level robustness bound computed from
    /// the envelope dominates every member's individual bound — a shard
    /// the envelope proves below a threshold needs no per-machine work at
    /// all. Under a cold-start model the envelope additionally covers the
    /// *cold* member CDFs — compaction can locally break the stochastic
    /// dominance of cold over warm cells, so cold CDFs are folded in
    /// explicitly to keep the bound valid for whichever cell
    /// [`ScorerShared::cdf_for`] picks. Built once (the PET is static);
    /// the `mean` field of an envelope is unused and left NaN.
    shard_cdfs: Vec<PetCdf>,
    /// Number of [`TABLE_SHARD_WIDTH`]-machine shards.
    shards: usize,
}

impl ScorerShared {
    #[inline]
    fn cdf(&self, tt: TaskTypeId, m: MachineId) -> &PetCdf {
        &self.cdfs[tt.index() * self.machines + m.index()]
    }

    /// The CDF a hypothetical append of type `tt` to `machine` scores
    /// with: the cold cell when the placement would pay a spin-up (no warm
    /// container, no same-type entry already queued — the warmth rule of
    /// [`PetTables`]), the warm cell otherwise.
    #[inline]
    fn cdf_for(&self, tt: TaskTypeId, machine: &MachineState) -> &PetCdf {
        match &self.cold_cdfs {
            Some(cold) if crate::chain::append_would_be_cold(machine, tt) => {
                &cold[tt.index() * self.machines + machine.id().index()]
            }
            _ => self.cdf(tt, machine.id()),
        }
    }

    #[inline]
    fn shard_cdf(&self, tt: TaskTypeId, shard: usize) -> &PetCdf {
        &self.shard_cdfs[tt.index() * self.shards + shard]
    }
}

/// Pointwise-max envelope of a shard's member CDFs: breakpoints are the
/// union of member breakpoints (a max of step functions only steps where
/// some member steps), values the running max of the member prefixes.
/// Non-decreasing because every member prefix is. Members are passed by
/// reference so warm and cold rows can be enveloped together.
fn envelope_cdf(members: &[&PetCdf]) -> PetCdf {
    let mut times: Vec<Time> = members.iter().flat_map(|c| c.times.iter().copied()).collect();
    times.sort_unstable();
    times.dedup();
    let mut cursors = vec![0usize; members.len()];
    let prefix = times
        .iter()
        .map(|&t| {
            let mut v = 0.0f64;
            for (cursor, member) in cursors.iter_mut().zip(members) {
                while *cursor < member.times.len() && member.times[*cursor] <= t {
                    *cursor += 1;
                }
                if *cursor > 0 {
                    v = v.max(member.prefix[*cursor - 1]);
                }
            }
            v
        })
        .collect();
    PetCdf { times, prefix, mean: f64::NAN }
}

/// One machine's independently-borrowable scoring cell: the incremental
/// tail cache, the convolution scratch pool that feeds it, and a column
/// scratch the pooled fan-out fills in place. Workers in a fan-out own one
/// cell each; nothing is shared mutably across cells.
#[derive(Debug, Default)]
struct MachineCache {
    cache: TailCache,
    /// Convolution scratch + PMF storage pool private to this machine.
    scratch: ConvScratch,
    /// Score-column scratch for pooled [`ScoreTable::rebuild`] rounds:
    /// workers cannot write into the caller-owned table, so they fill this
    /// and the caller swaps it into the table column in machine-index
    /// order (buffers recycle across events through the same swap).
    col: Vec<Option<PairScore>>,
}

impl MachineCache {
    /// Drops the cached chain — the machine left the cluster. Every PMF is
    /// recycled into the cell's own scratch pool, so a later re-join
    /// rebuilds from the free-list instead of the allocator; the cell
    /// itself (and its shard slot in a pooled store) stays put, which is
    /// what keeps surviving machines' warmth intact across membership
    /// changes.
    fn release(&mut self) {
        let Self { cache, scratch, .. } = self;
        for link in cache.links.drain(..) {
            scratch.recycle(link);
        }
        if let Some(head) = cache.head.take() {
            scratch.recycle(head);
        }
        cache.pending_sig.clear();
        cache.slots.clear();
        cache.exec_sig = None;
        cache.valid = false;
        cache.stats_valid = false;
    }

    /// Brings the cache up to date against `machine` at event time `now`
    /// (see module docs for the incremental strategy). `want_stats`
    /// additionally guarantees every slot's skewness is populated,
    /// rebuilding the chain in stats mode when a previous stats-free
    /// extension left placeholders.
    fn ensure(
        &mut self,
        shared: &ScorerShared,
        now: Time,
        machine: &MachineState,
        pets: PetTables<'_>,
        want_stats: bool,
    ) {
        let (policy, budget) = (shared.policy, shared.budget);
        let Self { cache, scratch, .. } = self;
        if cache.valid
            && cache.version == machine.version()
            && cache.now == now
            && (!want_stats || cache.stats_valid)
        {
            return;
        }

        let exec_sig = machine.executing().map(|e| (e.task.id, e.started_at, e.progress_before));
        let head_reusable = cache.valid
            && cache.now == now
            && cache.exec_sig == exec_sig
            && cache.warm_rev == machine.warm_rev()
            && (!want_stats || cache.stats_valid);
        if head_reusable {
            // Layer 2 prefix reuse: keep every chain link up to the first
            // divergence between the cached and live pending queues.
            let lcp = machine
                .pending_entries()
                .zip(cache.pending_sig.iter())
                .take_while(|(e, s)| e.task.id == s.id && e.progress == s.progress)
                .count();
            for link in cache.links.drain(lcp..) {
                scratch.recycle(link);
            }
            cache.pending_sig.truncate(lcp);
            cache.slots.truncate(usize::from(exec_sig.is_some()) + lcp);
        } else {
            // Full rebuild: recompute the conditioned head at `now`.
            for link in cache.links.drain(..) {
                scratch.recycle(link);
            }
            cache.pending_sig.clear();
            cache.slots.clear();
            if let Some(old) = cache.head.take() {
                scratch.recycle(old);
            }
            if let Some(exec) = machine.executing() {
                // Shared head pipeline (`chain::conditioned_head`) keeps
                // this bit-identical to from-scratch analysis.
                let (mut completion, robustness, skewness) = crate::chain::conditioned_head(
                    exec,
                    pets.for_exec(exec),
                    machine.id(),
                    now,
                    budget,
                    scratch,
                );
                if policy == DropPolicy::All {
                    // Eq. 5: the executing task is evicted at its deadline,
                    // so the machine is free no later than δ.
                    completion.clamp_above(exec.task.deadline);
                }
                cache.slots.push(SlotScore { task: exec.task, position: 0, robustness, skewness });
                cache.head = Some(completion);
            } else {
                cache.head = Some(Pmf::delta(now));
            }
            cache.exec_sig = exec_sig;
            cache.stats_valid = true;
        }

        // Extend the chain over the (new) pending suffix, via the shared
        // `chain::chain_extension` step. The Eq. 6 moment pass over the
        // uncompacted completion is the single most expensive part of an
        // append; only the pruner reads it, so stats-free callers skip it
        // (leaving the NaN placeholder `stats_valid` tracks).
        for (idx, entry) in machine.pending_entries().enumerate().skip(cache.pending_sig.len()) {
            let avail = cache.links.last().or(cache.head.as_ref()).expect("head built above");
            let (mut step, skewness) = crate::chain::chain_extension(
                avail,
                entry,
                pets.for_pending(machine, idx, entry),
                machine.id(),
                policy,
                budget,
                want_stats,
                scratch,
            );
            if !want_stats {
                cache.stats_valid = false;
            }
            if let Some(c) = step.completion.take() {
                scratch.recycle(c);
            }
            cache.slots.push(SlotScore {
                task: entry.task,
                position: cache.slots.len(),
                robustness: step.robustness.min(1.0),
                skewness,
            });
            cache.pending_sig.push(PendingSig { id: entry.task.id, progress: entry.progress });
            cache.links.push(step.availability);
        }

        cache.valid = true;
        cache.version = machine.version();
        cache.warm_rev = machine.warm_rev();
        cache.now = now;
    }
}

/// Where the per-machine cells live: locally in the scorer (sequential and
/// scoped fan-outs borrow them), or moved into a persistent
/// [`WorkerPool`] whose workers own one shard each (pooled fan-outs are
/// request/response rounds; between rounds the scorer reaches cells
/// through the pool's shared handle).
#[derive(Debug)]
enum CellStore {
    Local(Vec<MachineCache>),
    Pooled(WorkerPool<MachineCache>),
}

impl CellStore {
    /// Runs `f` against cell `i` on the calling thread — the single-cell
    /// request path (scores, tail/slot queries, column refreshes).
    fn with<R>(&mut self, i: usize, f: impl FnOnce(&mut MachineCache) -> R) -> R {
        match self {
            CellStore::Local(cells) => f(&mut cells[i]),
            CellStore::Pooled(pool) => pool.with_cell(i, f),
        }
    }
}

/// Which machines a warm-up fan-out touches. A tiny `Copy` enum (rather
/// than a closure) so the pooled round can ship the filter to `'static`
/// workers.
#[derive(Debug, Clone, Copy)]
enum WarmFilter {
    /// Machines with at least one queued task (the pruner's view).
    Occupied,
    /// Machines that can accept an assignment (the score table's view).
    FreeSlot,
}

impl WarmFilter {
    fn admits(self, machine: &MachineState) -> bool {
        match self {
            WarmFilter::Occupied => machine.occupancy() > 0,
            WarmFilter::FreeSlot => machine.has_free_slot(),
        }
    }
}

/// Shard-grouped live window rows shipped to pooled column rounds:
/// one `(row index, task)` list per shard, shared with workers as an
/// `Arc` and reclaimed via `Arc::get_mut` after the round.
type SharedLiveRows = Arc<Vec<Vec<(usize, Task)>>>;

/// Robustness/expected-completion scorer with incremental tail caching.
#[derive(Debug)]
pub struct ProbScorer {
    shared: Arc<ScorerShared>,
    /// The PET the scorer was built from, `Arc`-shared with pool workers.
    pet: Arc<PetMatrix>,
    /// Cold-placement PET (spin-up ⊛ execution per cell), `Arc`-shared
    /// with pool workers; `None` in the classic HC model.
    cold_pet: Option<Arc<PetMatrix>>,
    /// Current event clock (set by [`ProbScorer::begin_event`]).
    now: Time,
    /// Resolved fan-out width (set by [`ProbScorer::set_parallelism`]).
    threads: usize,
    /// Last cluster-membership epoch synchronized
    /// ([`ProbScorer::sync_membership`]); `None` until the first sync.
    membership_epoch: Option<u64>,
    /// Schedulable machines as of the last sync — what gates the worker
    /// pool (the fan-out should track the *live* cluster, not the machine
    /// universe).
    schedulable: usize,
    /// Per-machine incremental availability chains, index-aligned with
    /// machine ids.
    cells: CellStore,
    /// Scratch for scorer-level (machine-independent) operations:
    /// hypothetical appends and their recycling.
    hypo_scratch: ConvScratch,
    /// Pooled-round input buffers, reclaimed via `Arc::get_mut` once the
    /// workers drop their clones at the end of each round.
    snapshot: Option<Arc<Vec<MachineState>>>,
    live_shared: Option<SharedLiveRows>,
    /// Copy-out buffers for single-cell queries in pooled mode (borrows
    /// cannot escape a cell lock).
    slots_buf: Vec<SlotScore>,
    tail_buf: Pmf,
}

impl ProbScorer {
    /// Builds a scorer for `pet` under `policy`, compacting intermediate
    /// availability PMFs to `budget` impulses. The PET is cloned once into
    /// shared storage; every later query scores against it.
    #[must_use]
    pub fn new(pet: &PetMatrix, policy: DropPolicy, budget: usize) -> Self {
        Self::with_cold(pet, None, policy, budget)
    }

    /// Builds a scorer for a full system spec: cold-start-aware when the
    /// spec carries a [`hcsim_model::ColdStartModel`] (the cold PET is
    /// derived once — spin-up ⊛ execution per cell, compacted to
    /// `budget`), identical to [`ProbScorer::new`] otherwise.
    #[must_use]
    pub fn for_spec(spec: &SystemSpec, policy: DropPolicy, budget: usize) -> Self {
        let cold = spec.coldstart.as_ref().map(|c| c.cold_pet(&spec.pet, budget));
        Self::with_cold(&spec.pet, cold.as_ref(), policy, budget)
    }

    /// [`ProbScorer::new`] with an explicit cold-placement PET (same
    /// dimensions as `pet`; see [`hcsim_model::ColdStartModel::cold_pet`]).
    /// Queue chains and append scores then select the warm or cold cell
    /// per position via the [`PetTables`] warmth rules.
    ///
    /// # Panics
    ///
    /// Panics when `cold`'s dimensions disagree with `pet`'s.
    #[must_use]
    pub fn with_cold(
        pet: &PetMatrix,
        cold: Option<&PetMatrix>,
        policy: DropPolicy,
        budget: usize,
    ) -> Self {
        let mut cdfs = Vec::with_capacity(pet.task_types() * pet.machines());
        for tt in 0..pet.task_types() {
            for m in 0..pet.machines() {
                cdfs.push(PetCdf::build(pet.pmf(TaskTypeId::from(tt), MachineId::from(m))));
            }
        }
        let cold_cdfs = cold.map(|cold| {
            assert_eq!(cold.task_types(), pet.task_types(), "cold PET task type count");
            assert_eq!(cold.machines(), pet.machines(), "cold PET machine count");
            let mut cdfs = Vec::with_capacity(cold.task_types() * cold.machines());
            for tt in 0..cold.task_types() {
                for m in 0..cold.machines() {
                    cdfs.push(PetCdf::build(cold.pmf(TaskTypeId::from(tt), MachineId::from(m))));
                }
            }
            cdfs
        });
        let shards = pet.machines().div_ceil(TABLE_SHARD_WIDTH);
        let mut shard_cdfs = Vec::with_capacity(pet.task_types() * shards);
        let mut members: Vec<&PetCdf> = Vec::with_capacity(2 * TABLE_SHARD_WIDTH);
        for tt in 0..pet.task_types() {
            let row = &cdfs[tt * pet.machines()..(tt + 1) * pet.machines()];
            let cold_row =
                cold_cdfs.as_ref().map(|c| &c[tt * pet.machines()..(tt + 1) * pet.machines()]);
            for s in 0..shards {
                let range = shard_range(s, pet.machines());
                members.clear();
                members.extend(row[range.clone()].iter());
                if let Some(cold_row) = cold_row {
                    members.extend(cold_row[range].iter());
                }
                shard_cdfs.push(envelope_cdf(&members));
            }
        }
        let cells = (0..pet.machines()).map(|_| MachineCache::default()).collect();
        Self {
            shared: Arc::new(ScorerShared {
                policy,
                budget,
                cdfs,
                cold_cdfs,
                machines: pet.machines(),
                shard_cdfs,
                shards,
            }),
            pet: Arc::new(pet.clone()),
            cold_pet: cold.map(|c| Arc::new(c.clone())),
            now: 0,
            threads: 1,
            membership_epoch: None,
            schedulable: pet.machines(),
            cells: CellStore::Local(cells),
            hypo_scratch: ConvScratch::new(),
            snapshot: None,
            live_shared: None,
            slots_buf: Vec::new(),
            tail_buf: Pmf::delta(0),
        }
    }

    /// The drop policy the scorer models.
    #[must_use]
    pub fn policy(&self) -> DropPolicy {
        self.shared.policy
    }

    /// Starts a new mapping event at `now`. Caches are *not* discarded:
    /// validity is re-checked lazily against `(version, now)`, so an event
    /// at the same timestamp (a same-instant arrival burst) keeps every
    /// chain, and a moved clock rebuilds only the machines actually
    /// queried.
    pub fn begin_event(&mut self, now: Time) {
        self.now = now;
    }

    /// Configures the fan-out engine: `threads` workers (resolved — pass
    /// the output of [`crate::effective_threads`]) on the given `backend`.
    /// With [`FanoutBackend::Pool`] (or `Auto`) and a cluster large enough
    /// to fan out at all, the machine cells move into a persistent
    /// [`WorkerPool`] — built once, reused for every event, re-sharded
    /// only if the knobs change. Scoped/sequential configurations keep (or
    /// move back to) local cells. Idempotent and cheap when nothing
    /// changed, so mappers call it every event.
    pub fn set_parallelism(&mut self, threads: usize, backend: FanoutBackend) {
        let threads = threads.max(1);
        self.threads = threads;
        // Gate on the *schedulable* machine count (the live cluster after
        // churn, synced by [`ProbScorer::sync_membership`]; the full
        // machine universe for a static cluster), so a cluster that
        // shrinks below the fan-out floor dissolves its pool and one that
        // grows back re-builds it.
        let live = self.schedulable;
        let resolved = hcsim_parallel::resolve_backend(backend);
        let want_stealing = resolved == FanoutBackend::Stealing;
        let want_pool = matches!(resolved, FanoutBackend::Pool | FanoutBackend::Stealing)
            && threads > 1
            && live >= PARALLEL_MIN_MACHINES;
        let pool_threads = threads.clamp(1, live.max(1));
        let needs_change = match &self.cells {
            CellStore::Local(_) => want_pool,
            CellStore::Pooled(pool) => {
                !want_pool || pool.threads() != pool_threads || pool.stealing() != want_stealing
            }
        };
        if !needs_change {
            return;
        }
        self.cells = match std::mem::replace(&mut self.cells, CellStore::Local(Vec::new())) {
            // Pooled → pooled with a different width or round mode: the
            // membership-epoch re-shard (or a backend flip between owned
            // and stealing rounds). Cells move intact, so surviving
            // machines keep their cached chains.
            CellStore::Pooled(pool) if want_pool => {
                // Built with the clamped count so the `needs_change`
                // compare above is structural, not a coincidence of
                // matching clamps.
                CellStore::Pooled(WorkerPool::with_mode(
                    pool.into_cells(),
                    pool_threads,
                    want_stealing,
                ))
            }
            CellStore::Pooled(pool) => CellStore::Local(pool.into_cells()),
            CellStore::Local(cells) if want_pool => {
                CellStore::Pooled(WorkerPool::with_mode(cells, pool_threads, want_stealing))
            }
            local => local,
        };
    }

    /// Synchronizes the scorer with the cluster's membership epoch (see
    /// [`hcsim_sim::MapContext::membership_epoch`]). A no-op while the
    /// epoch is unchanged — the per-event steady state costs one compare.
    /// On a new epoch:
    ///
    /// * the schedulable-machine count that gates the worker pool is
    ///   refreshed (the next [`ProbScorer::set_parallelism`] call then
    ///   re-shards via [`WorkerPool::reshard`] if the clamp moved —
    ///   surviving machines' cells migrate with their cache warmth);
    /// * machines that left the cluster with empty queues have their
    ///   cached availability chains released back into their cells'
    ///   scratch pools (a re-join starts from a fresh, empty queue anyway,
    ///   and the version bump of the join would invalidate the chain —
    ///   releasing eagerly just returns the memory).
    ///
    /// Purely a resource-management hook: results are bit-identical with
    /// or without it, because cache validity is keyed on machine versions,
    /// which every lifecycle transition bumps.
    pub fn sync_membership(&mut self, epoch: u64, machines: &[MachineState]) {
        if self.membership_epoch == Some(epoch) {
            return;
        }
        self.membership_epoch = Some(epoch);
        debug_assert_machine_alignment(machines);
        self.schedulable = machines.iter().filter(|m| m.is_schedulable()).count();
        for (i, machine) in machines.iter().enumerate() {
            if !machine.is_schedulable() && machine.occupancy() == 0 {
                self.cells.with(i, MachineCache::release);
            }
        }
    }

    /// Schedulable machines as of the last membership sync (diagnostics).
    #[must_use]
    pub fn schedulable_machines(&self) -> usize {
        self.schedulable
    }

    /// True when the machine cells currently live in a persistent worker
    /// pool (diagnostics/tests).
    #[must_use]
    pub fn pool_active(&self) -> bool {
        matches!(self.cells, CellStore::Pooled(_))
    }

    /// Drains and joins the worker pool (if one is active) within
    /// `timeout`, moving the machine cells back to local storage. Returns
    /// `false` when a wedged worker forced the pool to be abandoned — the
    /// cells are then rebuilt empty, which is decision-neutral (caches are
    /// a pure accelerator) but loses their warmth. Idempotent; a scorer
    /// with local cells returns `true` immediately.
    pub fn shutdown(&mut self, timeout: std::time::Duration) -> bool {
        match std::mem::replace(&mut self.cells, CellStore::Local(Vec::new())) {
            CellStore::Local(cells) => {
                self.cells = CellStore::Local(cells);
                true
            }
            CellStore::Pooled(mut pool) => {
                if pool.shutdown(timeout) {
                    self.cells = CellStore::Local(pool.into_cells());
                    true
                } else {
                    // Workers still hold the shared cells; start over with
                    // cold caches rather than blocking on the wedged pool.
                    let machines = self.shared.machines;
                    self.cells =
                        CellStore::Local((0..machines).map(|_| MachineCache::default()).collect());
                    false
                }
            }
        }
    }

    /// Full queue analysis built from scratch — the reference
    /// implementation the incremental cache is verified against, and the
    /// source of per-slot completion PMFs when a caller needs more than
    /// [`SlotScore`] scalars.
    #[must_use]
    pub fn analyze(&self, machine: &MachineState, now: Time) -> QueueAnalysis {
        analyze_queue_cold(machine, self.pets(), now, self.shared.policy, self.shared.budget)
    }

    /// The warm/cold PET pair every queue chain selects its cells from
    /// (cold side absent in the classic model).
    #[must_use]
    pub fn pets(&self) -> PetTables<'_> {
        PetTables { warm: &self.pet, cold: self.cold_pet.as_deref() }
    }

    /// The machine's tail availability PMF, maintained incrementally.
    pub fn tail(&mut self, machine: &MachineState) -> &Pmf {
        let i = machine.id().index();
        let Self { shared, pet, cold_pet, now, cells, tail_buf, .. } = self;
        let pets = PetTables { warm: pet, cold: cold_pet.as_deref() };
        match cells {
            CellStore::Local(cells) => {
                let cell = &mut cells[i];
                cell.ensure(shared, *now, machine, pets, false);
                cell.cache.tail()
            }
            CellStore::Pooled(pool) => {
                pool.with_cell(i, |cell| {
                    cell.ensure(shared, *now, machine, pets, false);
                    tail_buf.clone_from(cell.cache.tail());
                });
                tail_buf
            }
        }
    }

    /// Clones the machine's tail into `out`, reusing `out`'s buffers —
    /// the single-copy path for callers that need an *owned* tail (MOC's
    /// permutation phase): in pooled mode a borrow cannot escape the cell
    /// lock, so [`ProbScorer::tail`] + `clone()` would copy twice.
    pub fn tail_into(&mut self, machine: &MachineState, out: &mut Pmf) {
        let Self { shared, pet, cold_pet, now, cells, .. } = self;
        let pets = PetTables { warm: pet, cold: cold_pet.as_deref() };
        cells.with(machine.id().index(), |cell| {
            cell.ensure(shared, *now, machine, pets, false);
            out.clone_from(cell.cache.tail());
        });
    }

    /// Per-slot robustness/skewness for every queued task (head first) —
    /// what the pruner's dropping pass consumes. Served from the
    /// incremental cache, so re-evaluating a queue after a mid-queue drop
    /// reconvolves only the suffix behind the removed task.
    pub fn slot_scores(&mut self, machine: &MachineState) -> &[SlotScore] {
        let i = machine.id().index();
        let Self { shared, pet, cold_pet, now, cells, slots_buf, .. } = self;
        let pets = PetTables { warm: pet, cold: cold_pet.as_deref() };
        match cells {
            CellStore::Local(cells) => {
                let cell = &mut cells[i];
                cell.ensure(shared, *now, machine, pets, true);
                &cell.cache.slots
            }
            CellStore::Pooled(pool) => {
                pool.with_cell(i, |cell| {
                    cell.ensure(shared, *now, machine, pets, true);
                    slots_buf.clone_from(&cell.cache.slots);
                });
                slots_buf
            }
        }
    }

    /// Scores appending `task` to `machine`'s queue. A machine with an
    /// announced departure scores against `min(δ, departs_at)` — the
    /// churn-aware bias that steers phase 2 away from soon-to-leave
    /// machines (see `effective_deadline`).
    pub fn score(&mut self, machine: &MachineState, task: &Task) -> PairScore {
        let Self { shared, pet, cold_pet, now, cells, .. } = self;
        let pets = PetTables { warm: pet, cold: cold_pet.as_deref() };
        let deadline = effective_deadline(task.deadline, machine.announced_departure());
        cells.with(machine.id().index(), |cell| {
            cell.ensure(shared, *now, machine, pets, false);
            score_against(
                cell.cache.tail(),
                shared.cdf_for(task.type_id, machine),
                deadline,
                shared.policy,
            )
        })
    }

    /// Scores `task` against an explicit tail (used by MOC's permutation
    /// phase, which evaluates hypothetical assignments).
    ///
    /// Always scores against the *warm* PET cell: the hypothetical tail
    /// carries no machine-warmth context. Under a cold-start model this
    /// overestimates the robustness of what would be a cold placement — an
    /// accepted approximation for the permutation/preemption probes that
    /// use this path (the serverless scenario maps with PAM, whose phases
    /// all go through the warmth-aware [`ProbScorer::score`] and
    /// [`ScoreTable`] paths).
    #[must_use]
    pub fn score_against_tail(
        &self,
        tail: &Pmf,
        tt: TaskTypeId,
        m: MachineId,
        deadline: Time,
    ) -> PairScore {
        score_against(tail, self.shared.cdf(tt, m), deadline, self.shared.policy)
    }

    /// Availability after hypothetically appending a task with execution
    /// PMF `exec` and `deadline` behind `tail`, compacted to the scorer's
    /// budget. Storage is drawn from the scorer's pool; hand the result
    /// back via [`ProbScorer::recycle`] to keep the loop allocation-free.
    pub fn append_availability(&mut self, tail: &Pmf, exec: &Pmf, deadline: Time) -> Pmf {
        let mut step =
            queue_step_into(tail, exec, deadline, self.shared.policy, &mut self.hypo_scratch);
        step.availability.compact(self.shared.budget);
        if let Some(c) = step.completion {
            self.hypo_scratch.recycle(c);
        }
        step.availability
    }

    /// Returns a PMF obtained from this scorer to its storage pool.
    pub fn recycle(&mut self, pmf: Pmf) {
        self.hypo_scratch.recycle(pmf);
    }

    /// Brings every occupied machine's cache up to date in one fan-out —
    /// the pruner calls this with `want_stats` before its sequential
    /// dropping walk so the expensive chain/statistics work runs across
    /// cores while the drop *decisions* stay in machine-index order.
    ///
    /// Results are bit-identical at any `threads`/backend (each cell's
    /// update is deterministic in the machine state alone); fan-outs
    /// smaller than [`PARALLEL_MIN_MACHINES`] run sequentially.
    pub fn warm_caches(&mut self, machines: &[MachineState], want_stats: bool) {
        debug_assert_machine_alignment(machines);
        let eligible = machines.iter().filter(|m| m.occupancy() > 0).count();
        let parallel = eligible >= PARALLEL_MIN_MACHINES;
        self.warm(machines, WarmFilter::Occupied, want_stats, parallel);
    }

    /// One warm-up fan-out over the machines `filter` admits: a pool round
    /// in pooled mode, a scoped fan-out over the filtered cells otherwise;
    /// `parallel = false` forces the sequential path on the calling
    /// thread.
    fn warm(
        &mut self,
        machines: &[MachineState],
        filter: WarmFilter,
        want_stats: bool,
        parallel: bool,
    ) {
        let Self { shared, pet, cold_pet, now, threads, cells, snapshot, .. } = self;
        let now = *now;
        match cells {
            CellStore::Pooled(pool) if parallel => {
                let snap = share_snapshot(snapshot, machines);
                let shared = Arc::clone(shared);
                let pet = Arc::clone(pet);
                let cold_pet = cold_pet.clone();
                pool.run(move |i, cell| {
                    let machine = &snap[i];
                    if filter.admits(machine) {
                        let pets = PetTables { warm: &pet, cold: cold_pet.as_deref() };
                        cell.ensure(&shared, now, machine, pets, want_stats);
                    }
                });
            }
            CellStore::Pooled(pool) => {
                let pets = PetTables { warm: pet, cold: cold_pet.as_deref() };
                for (i, machine) in machines.iter().enumerate() {
                    if filter.admits(machine) {
                        pool.with_cell(i, |cell| {
                            cell.ensure(shared, now, machine, pets, want_stats)
                        });
                    }
                }
            }
            CellStore::Local(cells) => {
                let threads = if parallel { *threads } else { 1 };
                struct WarmJob<'a> {
                    cell: &'a mut MachineCache,
                    machine: &'a MachineState,
                }
                let mut jobs: Vec<WarmJob<'_>> = cells
                    .iter_mut()
                    .zip(machines)
                    .filter(|(_, machine)| filter.admits(machine))
                    .map(|(cell, machine)| WarmJob { cell, machine })
                    .collect();
                let shared: &ScorerShared = shared;
                let pets = PetTables { warm: pet, cold: cold_pet.as_deref() };
                parallel_for_each_mut(&mut jobs, threads, |_, job| {
                    job.cell.ensure(shared, now, job.machine, pets, want_stats);
                });
            }
        }
    }

    /// Earliest possible start per free machine (`None`: no free slot),
    /// gathered in machine-index order for the [`ScoreTable`] bound pass.
    /// Cells must already be warm for the free machines.
    fn collect_tail_mins(&mut self, machines: &[MachineState], out: &mut Vec<Option<Time>>) {
        out.clear();
        for (i, machine) in machines.iter().enumerate() {
            let earliest = machine
                .has_free_slot()
                .then(|| self.cells.with(i, |cell| cell.cache.tail().min_time()));
            out.push(earliest);
        }
    }

    /// Fan-out 2 of [`ScoreTable::rebuild`]: scores the bound-surviving
    /// rows against the free machines of the shards they survived in —
    /// `live_by_shard[s]` lists the `(row, task)` pairs live in shard `s`,
    /// and machine `m` scores exactly `live_by_shard[m / width]` — one
    /// column per machine, merged into `cols` in machine-index order.
    fn fill_columns(
        &mut self,
        machines: &[MachineState],
        live_by_shard: &[Vec<(usize, Task)>],
        rows: usize,
        cols: &mut [Vec<Option<PairScore>>],
        parallel: bool,
    ) {
        let Self { shared, pet: _, now: _, threads, cells, snapshot, live_shared, .. } = self;
        match cells {
            CellStore::Pooled(pool) if parallel => {
                let snap = share_snapshot(snapshot, machines);
                let live = share_live(live_shared, live_by_shard);
                let shared = Arc::clone(shared);
                pool.run(move |i, cell| {
                    let machine = &snap[i];
                    let MachineCache { cache, col, .. } = cell;
                    col.clear();
                    col.resize(rows, None);
                    if !machine.has_free_slot() {
                        return;
                    }
                    let live = &live[i / TABLE_SHARD_WIDTH];
                    score_column_scatter(cache.tail(), &shared, machine, live, col);
                });
                // Index-ordered merge: swap each worker-filled column into
                // the table (and recycle the table's old buffer as the
                // cell's next scratch).
                for (i, col) in cols.iter_mut().enumerate() {
                    pool.with_cell(i, |cell| std::mem::swap(col, &mut cell.col));
                }
            }
            CellStore::Pooled(pool) => {
                for ((i, machine), col) in machines.iter().enumerate().zip(cols.iter_mut()) {
                    col.clear();
                    col.resize(rows, None);
                    if !machine.has_free_slot() {
                        continue;
                    }
                    let live = &live_by_shard[i / TABLE_SHARD_WIDTH];
                    pool.with_cell(i, |cell| {
                        score_column_scatter(cell.cache.tail(), shared, machine, live, col);
                    });
                }
            }
            CellStore::Local(cells) => {
                let threads = if parallel { *threads } else { 1 };
                struct ColJob<'a> {
                    cell: &'a mut MachineCache,
                    machine: &'a MachineState,
                    col: &'a mut Vec<Option<PairScore>>,
                }
                let mut jobs: Vec<ColJob<'_>> = cells
                    .iter_mut()
                    .zip(machines)
                    .zip(cols.iter_mut())
                    .map(|((cell, machine), col)| ColJob { cell, machine, col })
                    .collect();
                let shared: &ScorerShared = shared;
                parallel_for_each_mut(&mut jobs, threads, |_, job| {
                    job.col.clear();
                    job.col.resize(rows, None);
                    if !job.machine.has_free_slot() {
                        return;
                    }
                    let live = &live_by_shard[job.machine.id().index() / TABLE_SHARD_WIDTH];
                    score_column_scatter(job.cell.cache.tail(), shared, job.machine, live, job.col);
                });
            }
        }
    }

    /// Ensures `machine`'s cell and returns its tail's earliest start —
    /// the single-machine bound probe [`ScoreTable::push_row`] uses.
    fn ensure_tail_min(&mut self, machine: &MachineState) -> Time {
        let Self { shared, pet, cold_pet, now, cells, .. } = self;
        let pets = PetTables { warm: pet, cold: cold_pet.as_deref() };
        cells.with(machine.id().index(), |cell| {
            cell.ensure(shared, *now, machine, pets, false);
            cell.cache.tail().min_time()
        })
    }
}

/// Clones `machines` into the reusable `Arc` snapshot buffer a pooled
/// round ships to its `'static` workers. Workers drop their `Arc` clones
/// before acknowledging the round, so `Arc::get_mut` reclaims the buffer
/// — and `MachineState::clone_from` the per-machine queue buffers — every
/// time after the first.
///
/// The update is **version-delta**: a buffered machine whose
/// `(id, version)` already matches the live one is skipped entirely —
/// `MachineState::version()` bumps on every mutation, and the whole
/// incremental-cache layer already keys on it, so an equal version means
/// identical content. In particular the second round of a
/// [`ScoreTable::rebuild`] (machines untouched since the warm round)
/// costs a scalar compare per machine, not a re-clone.
fn share_snapshot(
    slot: &mut Option<Arc<Vec<MachineState>>>,
    machines: &[MachineState],
) -> Arc<Vec<MachineState>> {
    let mut arc = slot.take().unwrap_or_else(|| Arc::new(Vec::new()));
    match Arc::get_mut(&mut arc) {
        Some(buf) => {
            buf.truncate(machines.len());
            let filled = buf.len();
            for (dst, src) in buf.iter_mut().zip(machines) {
                if dst.id() != src.id() || dst.version() != src.version() {
                    dst.clone_from(src);
                }
            }
            buf.extend(machines[filled..].iter().cloned());
        }
        None => arc = Arc::new(machines.to_vec()),
    }
    *slot = Some(Arc::clone(&arc));
    arc
}

/// Same reuse pattern for the per-shard live window rows of a column
/// round (inner buffers keep their capacity across events).
fn share_live(
    slot: &mut Option<SharedLiveRows>,
    live_by_shard: &[Vec<(usize, Task)>],
) -> SharedLiveRows {
    let mut arc = slot.take().unwrap_or_else(|| Arc::new(Vec::new()));
    match Arc::get_mut(&mut arc) {
        Some(buf) => {
            buf.resize_with(live_by_shard.len(), Vec::new);
            for (dst, src) in buf.iter_mut().zip(live_by_shard) {
                dst.clear();
                dst.extend_from_slice(src);
            }
        }
        None => arc = Arc::new(live_by_shard.to_vec()),
    }
    *slot = Some(Arc::clone(&arc));
    arc
}

/// Slop added to the robustness upper bound before comparing it against a
/// skip threshold. The analytic bound `Σ p_u · cdf(δ−u) ≤ cdf(δ−u_min)`
/// can be violated by float rounding only by ~`n·ulp` (≤ 1e-13 for any
/// realistic tail) plus the tail's normalization epsilon (1e-9), so a
/// 1e-8 margin makes the skip decision *provably* agree with the exact
/// comparison.
const BOUND_MARGIN: f64 = 1e-8;

/// The (window task × machine) score matrix PAM and MOC reduce over,
/// maintained *hierarchically* and *incrementally* — within a mapping
/// event and, when nothing invalidates it, across the events of a
/// same-instant arrival burst.
///
/// Layout is machine-major (one contiguous column per machine), grouped
/// into contiguous `TABLE_SHARD_WIDTH`-machine shards, which is what
/// makes both the bound pass and the phase-2 reduction cheap at cluster
/// scale:
///
/// * [`ScoreTable::rebuild`] — on the first event of a tick — ensures
///   every free machine's tail cache in a per-machine fan-out (a
///   worker-pool round at cluster scale), then scores the surviving
///   (row, shard) pairs in a second fan-out (columns are disjoint cells,
///   merged in machine-index order);
/// * between the two fan-outs, a **hierarchical bound pass** proves most
///   window rows deferred without scoring them — and most shards of the
///   remaining rows irrelevant without touching their machines. The
///   robustness of (task, machine) is at most `CDF_E(δ − tail.min_time())`
///   (every startable impulse has at least that much slack, and the tail
///   carries at most unit mass); per shard, the *envelope* CDF (pointwise
///   max over members, precomputed once) evaluated at the shard's
///   earliest free start dominates every member's individual bound. A
///   shard whose envelope bound stays below the caller's skip threshold
///   is skipped whole; a row dead in *every* shard is deferred without
///   scoring anything. Per-row bound work is O(shards), not O(machines).
///   `BOUND_MARGIN` absorbs float slop, so skip decisions *provably*
///   agree with exact scoring: a skipped machine's exact robustness is
///   strictly below the threshold, so its score could only ever lose the
///   reduction to deferral anyway. (The shard test is conservative — an
///   envelope can clear the threshold when no member does — so surviving
///   shards are scored *exactly*; extra `Some` entries below the
///   threshold never change a decision, because the reductions defer/cull
///   on the exact value.)
/// * each shard also caches its **per-row best candidate**
///   (first-wins under the exact comparison), so
///   [`ScoreTable::best_for_row`] reduces over O(shards) precomputed
///   winners instead of scanning O(machines) columns. Shards are
///   contiguous index ranges, so the grouped first-wins reduction picks
///   exactly the machine a flat ascending scan would.
/// * between assignments, only the *assigned* machine's column (and its
///   shard's aggregates) change ([`ScoreTable::refresh_machine`]), plus
///   one appended row when a new batch task slides into the window
///   ([`ScoreTable::push_row`]). Every other pair keeps its previously
///   computed score — which is exactly the value a from-scratch rescore
///   would produce, because pair scores are deterministic in
///   (machine state, task) alone. Within one event machines only fill up
///   and bounds only tighten, so a skipped row can never need
///   resurrection mid-event.
/// * across the events of a same-tick burst, [`ScoreTable::ensure`]
///   revalidates the table against `(now, membership epoch, machine
///   versions, window)` instead of rebuilding: only machines whose
///   version moved (completions, pruner drops) are rescored, rows whose
///   bounds those machines *loosened* are resurrected shard-by-shard, and
///   the window diff is applied as removals + appended rows. Every
///   surviving entry is byte-identical to what a fresh rebuild would
///   compute, so burst events cost O(changed), not O(machines).
///
/// The sequential heuristics used to rescore the full window × machines
/// product on every loop iteration; under oversubscription — where the
/// batch is dominated by tasks that will be deferred again — the table
/// turns that into a cheap per-shard bound sweep plus O(live) exact
/// work, without changing a single mapping decision.
#[derive(Debug, Default)]
pub struct ScoreTable {
    /// One column per machine; `cols[m][i]` scores window task `i` on
    /// machine `m` (`None`: no free slot, or (row, shard) skipped by the
    /// bound pass).
    cols: Vec<Vec<Option<PairScore>>>,
    /// Row-aligned: false when the bound pass proved the row deferred.
    scored: Vec<bool>,
    /// Row-aligned: which shards the row survived the bound pass in
    /// (inner length = shards). Entries only flip dead → live, and only
    /// in [`ScoreTable::ensure`] when a changed machine loosened a bound.
    shard_live: Vec<Vec<bool>>,
    /// Recycled `shard_live` lanes (keeps row churn allocation-free).
    spare_lanes: Vec<Vec<bool>>,
    /// Per shard, per row: the shard's best candidate under the exact
    /// first-wins comparison (`None`: no scored member).
    shard_best: Vec<Vec<Option<(usize, PairScore)>>>,
    /// Scratch: `(row, task)` pairs live in one shard (column refreshes).
    live: Vec<(usize, Task)>,
    /// Scratch: per-shard `(row, task)` lists for the rebuild fan-out.
    live_by_shard: Vec<Vec<(usize, Task)>>,
    /// Earliest tail impulse per free machine (`None`: no free slot),
    /// kept current by refresh/ensure for the shard bounds.
    tail_mins: Vec<Option<Time>>,
    /// Per shard: min over members of `tail_mins` (`None`: no free
    /// member).
    shard_earliest: Vec<Option<Time>>,
    /// Same-tick reuse signature: `(now, membership epoch)` of the last
    /// rebuild, machine versions and window tasks as last scored.
    sig: Option<(Time, Option<u64>)>,
    versions: Vec<u64>,
    row_tasks: Vec<Task>,
    /// Set by [`ScoreTable::invalidate`] when the caller's thresholds
    /// drifted (PAMF sufferage): the next ensure falls back to rebuild.
    stale: bool,
    /// Ensure scratch: indices/mask of version-changed machines, dirty
    /// shards, and resurrected `(row, shard)` pairs.
    changed: Vec<usize>,
    changed_mask: Vec<bool>,
    dirty_shards: Vec<bool>,
    newly_live: Vec<(usize, usize)>,
}

/// Machine-index range of shard `s` in a `machines`-wide cluster.
#[inline]
fn shard_range(s: usize, machines: usize) -> std::ops::Range<usize> {
    let start = s * TABLE_SHARD_WIDTH;
    start..(start + TABLE_SHARD_WIDTH).min(machines)
}

/// The exact phase-1 comparison: higher robustness, tie → lower expected
/// completion. Strictly-better, so first-wins scans keep the lowest
/// index among equals — the sequential heuristics' order.
#[inline]
fn better_pair(score: &PairScore, best: &PairScore) -> bool {
    score.robustness > best.robustness
        || (score.robustness == best.robustness
            && score.expected_completion < best.expected_completion)
}

/// First-wins best over shard `s`'s scored entries for `row`.
fn shard_best_entry(
    cols: &[Vec<Option<PairScore>>],
    s: usize,
    row: usize,
) -> Option<(usize, PairScore)> {
    let mut best: Option<(usize, PairScore)> = None;
    for m in shard_range(s, cols.len()) {
        let Some(score) = cols[m][row] else { continue };
        if best.as_ref().is_none_or(|(_, b)| better_pair(&score, b)) {
            best = Some((m, score));
        }
    }
    best
}

/// [`shard_best_entry`] restricted to machines that currently have a free
/// slot — the fallback when a cached shard best went stale-full.
fn shard_best_live(
    cols: &[Vec<Option<PairScore>>],
    s: usize,
    row: usize,
    machines: &[MachineState],
) -> Option<(usize, PairScore)> {
    let mut best: Option<(usize, PairScore)> = None;
    for m in shard_range(s, cols.len()) {
        if !machines[m].has_free_slot() {
            continue;
        }
        let Some(score) = cols[m][row] else { continue };
        if best.as_ref().is_none_or(|(_, b)| better_pair(&score, b)) {
            best = Some((m, score));
        }
    }
    best
}

impl ScoreTable {
    /// An empty table; [`ScoreTable::rebuild`] sizes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of window tasks currently tracked.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.scored.len()
    }

    /// Recomputes the whole table for `tasks` (the batch window) against
    /// every machine, fanning the per-machine work out on the scorer's
    /// configured engine ([`ProbScorer::set_parallelism`]). `skip_below`
    /// gives, per task type, the robustness threshold under which the
    /// caller's reduction would defer/cull the task anyway — (row, shard)
    /// pairs whose envelope bound proves that are left unscored. Machines
    /// without a free slot get an all-`None` column. Bit-identical at any
    /// thread count and on every backend.
    pub fn rebuild(
        &mut self,
        scorer: &mut ProbScorer,
        machines: &[MachineState],
        tasks: &[Task],
        skip_below: &dyn Fn(TaskTypeId) -> f64,
    ) {
        debug_assert_machine_alignment(machines);
        self.cols.resize_with(machines.len(), Vec::new);
        let free = machines.iter().filter(|m| m.has_free_slot()).count();
        let parallel = free >= PARALLEL_MIN_MACHINES;
        let shards = scorer.shared.shards;

        // Fan-out 1: bring every free machine's availability chain up to
        // date (the convolution-heavy part), then gather the bound
        // scalars and fold them into per-shard earliest starts.
        scorer.warm(machines, WarmFilter::FreeSlot, false, parallel);
        scorer.collect_tail_mins(machines, &mut self.tail_mins);
        self.shard_earliest.clear();
        self.shard_earliest.resize(shards, None);
        for (m, &tm) in self.tail_mins.iter().enumerate() {
            if let Some(t) = tm {
                let e = &mut self.shard_earliest[m / TABLE_SHARD_WIDTH];
                *e = Some(e.map_or(t, |cur| cur.min(t)));
            }
        }

        // Hierarchical bound pass: per row, one envelope probe per shard;
        // only surviving (row, shard) pairs reach the scoring fan-out.
        self.scored.clear();
        self.spare_lanes.append(&mut self.shard_live);
        self.live_by_shard.resize_with(shards, Vec::new);
        for lane in &mut self.live_by_shard {
            lane.clear();
        }
        for (row, task) in tasks.iter().enumerate() {
            let threshold = skip_below(task.type_id);
            let mut lanes = self.spare_lanes.pop().unwrap_or_default();
            lanes.clear();
            lanes.resize(shards, false);
            let mut any = false;
            for (s, lane) in lanes.iter_mut().enumerate() {
                let Some(earliest) = self.shard_earliest[s] else { continue };
                let env = scorer.shared.shard_cdf(task.type_id, s);
                if robustness_bound(earliest, env, task.deadline) + BOUND_MARGIN >= threshold {
                    *lane = true;
                    any = true;
                    self.live_by_shard[s].push((row, *task));
                }
            }
            self.scored.push(any);
            self.shard_live.push(lanes);
        }

        // Fan-out 2: exact scores for the surviving (row, shard) pairs,
        // one column per machine.
        scorer.fill_columns(machines, &self.live_by_shard, tasks.len(), &mut self.cols, parallel);

        // Per-shard phase-1 reduction: cache each shard's best candidate
        // per live row, so best_for_row touches O(shards) entries.
        self.shard_best.resize_with(shards, Vec::new);
        for (s, bests) in self.shard_best.iter_mut().enumerate() {
            bests.clear();
            bests.resize(tasks.len(), None);
            for &(row, _) in &self.live_by_shard[s] {
                bests[row] = shard_best_entry(&self.cols, s, row);
            }
        }

        // Same-tick reuse signature.
        self.versions.clear();
        self.versions.extend(machines.iter().map(MachineState::version));
        self.row_tasks.clear();
        self.row_tasks.extend_from_slice(tasks);
        self.sig = Some((scorer.now, scorer.membership_epoch));
        self.stale = false;
    }

    /// Marks the table unusable for same-tick reuse: the next
    /// [`ScoreTable::ensure`] rebuilds from scratch. Callers whose skip
    /// thresholds drift between events (PAMF sufferage) must invalidate,
    /// because resurrection only rechecks bounds that a *machine* change
    /// loosened — a *threshold* change would go unnoticed.
    pub fn invalidate(&mut self) {
        self.stale = true;
    }

    /// Revalidates the table for a new mapping event at the same instant
    /// instead of rebuilding: when `(now, membership epoch)` match the
    /// last rebuild, only version-changed machines (completions since the
    /// last event, pruner drops this event) are rescored, rows whose
    /// bounds those machines loosened are resurrected, and the window
    /// diff is applied as removals plus appended rows. Falls back to
    /// [`ScoreTable::rebuild`] otherwise. Returns `true` when the table
    /// was reused incrementally.
    ///
    /// Every entry after `ensure` that a fresh rebuild would also score
    /// is byte-identical to the rebuilt value (pair scores are
    /// deterministic in `(machine state, now, task)`, all of which are
    /// revalidated); entries `ensure` keeps that a rebuild would have
    /// bound-skipped are exact scores strictly below the caller's
    /// threshold, which the reductions defer/cull identically. Decisions
    /// are therefore unchanged — only the work is.
    pub fn ensure(
        &mut self,
        scorer: &mut ProbScorer,
        machines: &[MachineState],
        tasks: &[Task],
        skip_below: &dyn Fn(TaskTypeId) -> f64,
    ) -> bool {
        let shards = scorer.shared.shards;
        let reusable = !self.stale
            && self.sig == Some((scorer.now, scorer.membership_epoch))
            && self.versions.len() == machines.len()
            && self.shard_earliest.len() == shards;
        if !reusable {
            self.rebuild(scorer, machines, tasks, skip_below);
            return false;
        }
        debug_assert_machine_alignment(machines);

        // Phase 1: find version-changed machines and refresh their bound
        // scalars (and their shards' earliest starts).
        self.changed.clear();
        self.changed_mask.clear();
        self.changed_mask.resize(machines.len(), false);
        self.dirty_shards.clear();
        self.dirty_shards.resize(shards, false);
        for (m, machine) in machines.iter().enumerate() {
            if self.versions[m] != machine.version() {
                self.versions[m] = machine.version();
                self.tail_mins[m] =
                    machine.has_free_slot().then(|| scorer.ensure_tail_min(machine));
                self.changed.push(m);
                self.changed_mask[m] = true;
                self.dirty_shards[m / TABLE_SHARD_WIDTH] = true;
            }
        }
        for s in 0..shards {
            if self.dirty_shards[s] {
                self.recompute_shard_earliest(s);
            }
        }

        // Phase 2: resurrection. Only a changed machine can have loosened
        // a bound (a completion or drop shortens a queue), and only
        // within its own shard — so rechecking the dirty shards of every
        // row restores exactly the liveness a fresh bound pass would
        // compute (unchanged shards kept their bounds; live shards stay
        // live, which at worst over-scores — see above).
        self.newly_live.clear();
        for row in 0..self.scored.len() {
            let task = self.row_tasks[row];
            let threshold = skip_below(task.type_id);
            for s in 0..shards {
                if !self.dirty_shards[s] || self.shard_live[row][s] {
                    continue;
                }
                let Some(earliest) = self.shard_earliest[s] else { continue };
                let env = scorer.shared.shard_cdf(task.type_id, s);
                if robustness_bound(earliest, env, task.deadline) + BOUND_MARGIN >= threshold {
                    self.shard_live[row][s] = true;
                    self.scored[row] = true;
                    self.newly_live.push((row, s));
                }
            }
        }

        // Phase 3: rescore the changed machines' columns (rows live in
        // their shard — including the just-resurrected ones), then score
        // resurrected (row, shard) pairs on the shard's unchanged free
        // machines.
        for i in 0..self.changed.len() {
            let m = self.changed[i];
            self.rescore_column(scorer, machines, m);
        }
        for i in 0..self.newly_live.len() {
            let (row, s) = self.newly_live[i];
            let task = self.row_tasks[row];
            for m in shard_range(s, machines.len()) {
                if self.changed_mask[m] || !machines[m].has_free_slot() {
                    continue;
                }
                self.cols[m][row] = Some(scorer.score(&machines[m], &task));
            }
        }

        // Phase 4: refresh the affected shard-best caches.
        for &m in &self.changed {
            let s = m / TABLE_SHARD_WIDTH;
            for row in 0..self.scored.len() {
                if self.shard_live[row][s] {
                    self.shard_best[s][row] = shard_best_entry(&self.cols, s, row);
                }
            }
        }
        for &(row, s) in &self.newly_live {
            self.shard_best[s][row] = shard_best_entry(&self.cols, s, row);
        }

        // Phase 5: reconcile the window. The new window is the old one
        // minus departed tasks (assigned last event, expired this tick)
        // plus a slid-in suffix; a two-pointer walk applies exactly that
        // as removals and pushes. Any weirder diff degenerates to
        // remove-all + push-all — slower, still exact.
        let mut row = 0;
        for task in tasks {
            while row < self.rows() && self.row_tasks[row].id != task.id {
                self.remove_row(row);
            }
            if row < self.rows() {
                row += 1;
            } else {
                self.push_row(scorer, machines, task, skip_below);
                row += 1;
            }
        }
        while self.rows() > tasks.len() {
            let last = tasks.len();
            self.remove_row(last);
        }
        true
    }

    /// Recomputes `shard_earliest[s]` from its members' `tail_mins`.
    fn recompute_shard_earliest(&mut self, s: usize) {
        self.shard_earliest[s] =
            self.tail_mins[shard_range(s, self.tail_mins.len())].iter().flatten().copied().min();
    }

    /// Rescores machine `m`'s column for the rows live in its shard (or
    /// clears it when the machine has no free slot). Bound scalars and
    /// shard aggregates are the caller's responsibility.
    fn rescore_column(&mut self, scorer: &mut ProbScorer, machines: &[MachineState], m: usize) {
        let machine = &machines[m];
        let rows = self.scored.len();
        if !machine.has_free_slot() {
            let col = &mut self.cols[m];
            col.clear();
            col.resize(rows, None);
            return;
        }
        let s = m / TABLE_SHARD_WIDTH;
        self.live.clear();
        for (row, task) in self.row_tasks.iter().enumerate() {
            if self.shard_live[row][s] {
                self.live.push((row, *task));
            }
        }
        let col = &mut self.cols[m];
        col.clear();
        col.resize(rows, None);
        let live = &self.live;
        let ProbScorer { shared, pet, cold_pet, now, cells, .. } = scorer;
        let pets = PetTables { warm: pet, cold: cold_pet.as_deref() };
        cells.with(m, |cell| {
            cell.ensure(shared, *now, machine, pets, false);
            score_column_scatter(cell.cache.tail(), shared, machine, live, col);
        });
    }

    /// Drops window row `row` (its task was assigned or left the batch).
    pub fn remove_row(&mut self, row: usize) {
        for col in &mut self.cols {
            col.remove(row);
        }
        self.scored.remove(row);
        let lanes = self.shard_live.remove(row);
        self.spare_lanes.push(lanes);
        for bests in &mut self.shard_best {
            bests.remove(row);
        }
        if row < self.row_tasks.len() {
            self.row_tasks.remove(row);
        }
    }

    /// Appends a row for `task` (a batch task that slid into the window):
    /// shard-bound-checked against the cached earliest starts, then
    /// scored on the free machines of its surviving shards.
    ///
    /// The cached starts can be stale only for machines assigned to since
    /// their last refresh — whose queues *grew* — so a stale bound is
    /// only ever looser than the live one: liveness is a superset of a
    /// fresh bound pass, never a subset, and the extra entries are exact
    /// scores below the threshold (deferred either way).
    pub fn push_row(
        &mut self,
        scorer: &mut ProbScorer,
        machines: &[MachineState],
        task: &Task,
        skip_below: &dyn Fn(TaskTypeId) -> f64,
    ) {
        let shards = self.shard_earliest.len();
        let threshold = skip_below(task.type_id);
        let mut lanes = self.spare_lanes.pop().unwrap_or_default();
        lanes.clear();
        lanes.resize(shards, false);
        let mut any = false;
        for (s, lane) in lanes.iter_mut().enumerate() {
            let Some(earliest) = self.shard_earliest[s] else { continue };
            let env = scorer.shared.shard_cdf(task.type_id, s);
            if robustness_bound(earliest, env, task.deadline) + BOUND_MARGIN >= threshold {
                *lane = true;
                any = true;
            }
        }
        let row = self.scored.len();
        self.scored.push(any);
        for (m, (machine, col)) in machines.iter().zip(&mut self.cols).enumerate() {
            let value = (lanes[m / TABLE_SHARD_WIDTH] && machine.has_free_slot())
                .then(|| scorer.score(machine, task));
            col.push(value);
        }
        for (s, bests) in self.shard_best.iter_mut().enumerate() {
            let entry = if lanes[s] { shard_best_entry(&self.cols, s, row) } else { None };
            bests.push(entry);
        }
        self.shard_live.push(lanes);
        self.row_tasks.push(*task);
    }

    /// Rescores machine `m`'s column against the current window `tasks`
    /// (its queue changed) — a single-cell request to wherever the cell
    /// lives, plus an update of the shard's aggregates. A machine that
    /// filled up gets an all-`None` column; within one mapping event
    /// machines never go full → free and skipped (row, shard) pairs never
    /// resurrect (their bound only tightens), so stale entries cannot
    /// resurface.
    pub fn refresh_machine(
        &mut self,
        scorer: &mut ProbScorer,
        machines: &[MachineState],
        tasks: &[Task],
        m: usize,
    ) {
        debug_assert_eq!(tasks.len(), self.rows(), "window drifted from table");
        debug_assert!(
            tasks.iter().zip(&self.row_tasks).all(|(a, b)| a.id == b.id),
            "window drifted from table rows"
        );
        self.rescore_column(scorer, machines, m);
        let machine = &machines[m];
        if m < self.versions.len() {
            self.versions[m] = machine.version();
        }
        // The cell is warm after the rescore, so the bound probe is a
        // cache hit.
        self.tail_mins[m] = machine.has_free_slot().then(|| scorer.ensure_tail_min(machine));
        let s = m / TABLE_SHARD_WIDTH;
        self.recompute_shard_earliest(s);
        for row in 0..self.scored.len() {
            if self.shard_live[row][s] {
                self.shard_best[s][row] = shard_best_entry(&self.cols, s, row);
            }
        }
    }

    /// The score of window task `row` on machine `m`, if it was scored.
    #[must_use]
    pub fn get(&self, row: usize, m: usize) -> Option<PairScore> {
        self.cols[m][row]
    }

    /// Phase 1 for one window task: the machine offering the highest
    /// robustness among machines with free slots (tie → lower expected
    /// completion) — the same comparisons and effective scan order the
    /// sequential heuristics used, reduced over the per-shard best
    /// caches: shards are contiguous ascending index ranges, so the
    /// grouped first-wins reduction returns exactly the flat scan's
    /// winner. A cached best whose machine has since lost its free slot
    /// falls back to rescanning that shard.
    #[must_use]
    pub fn best_for_row(
        &self,
        machines: &[MachineState],
        row: usize,
    ) -> Option<(MachineId, PairScore)> {
        let mut best: Option<(usize, PairScore)> = None;
        for (s, bests) in self.shard_best.iter().enumerate() {
            let cand = match bests[row] {
                None => None,
                Some((m, score)) if machines[m].has_free_slot() => Some((m, score)),
                Some(_) => shard_best_live(&self.cols, s, row, machines),
            };
            let Some((m, score)) = cand else { continue };
            if best.as_ref().is_none_or(|(_, b)| better_pair(&score, b)) {
                best = Some((m, score));
            }
        }
        best.map(|(m, score)| (MachineId::from(m), score))
    }
}

fn debug_assert_machine_alignment(machines: &[MachineState]) {
    debug_assert!(
        machines.iter().enumerate().all(|(i, m)| m.id().index() == i),
        "machine slice must be id-ordered"
    );
}

/// Walk-down cursor over a [`PetCdf`] for *non-increasing* query
/// sequences. The scoring loops probe `CDF_E(δ − t)` with the tail times
/// `t` ascending, so the cut index only ever moves left; maintaining it
/// with a pointer walk replaces one binary search per (impulse, task)
/// probe with amortized O(|cdf|) total work per task — and returns the
/// *exact* same prefix value as [`PetCdf::cdf_at`].
struct CdfCursor<'a> {
    times: &'a [Time],
    prefix: &'a [f64],
    idx: usize,
}

impl<'a> CdfCursor<'a> {
    fn new(cdf: &'a PetCdf) -> Self {
        Self { times: &cdf.times, prefix: &cdf.prefix, idx: cdf.times.len() }
    }

    /// CDF at `q`; callers must probe with non-increasing `q`.
    #[inline]
    fn at_descending(&mut self, q: Time) -> f64 {
        debug_assert!(self.idx == self.times.len() || self.times[self.idx] > q);
        while self.idx > 0 && self.times[self.idx - 1] > q {
            self.idx -= 1;
        }
        if self.idx == 0 {
            0.0
        } else {
            self.prefix[self.idx - 1]
        }
    }
}

/// Upper bound on the Eq. 1 robustness of appending a task with deadline
/// `deadline` behind a tail whose earliest impulse is `earliest`: every
/// startable impulse leaves at most `δ − earliest` slack, and the tail
/// carries at most unit mass, so `Σ p_u · CDF_E(δ−u) ≤ CDF_E(δ − u_min)`.
/// One CDF lookup — the [`ScoreTable`] bound pass runs this per
/// (row, machine) in place of the full scoring walk.
fn robustness_bound(earliest: Time, cdf: &PetCdf, deadline: Time) -> f64 {
    if earliest >= deadline {
        0.0
    } else {
        cdf.cdf_at(deadline - earliest)
    }
}

/// Effective scoring deadline on one machine: a task on a machine with an
/// announced departure cannot be counted on past the departure instant —
/// a drain stops the queue, a fail requeues it — so its robustness is
/// computed against `min(δ, departs_at)`. Machines without an
/// announcement score against the plain deadline. The bound pass keeps
/// the unclamped deadline: clamping only *lowers* robustness, so the
/// unclamped bound stays a valid upper bound.
#[inline]
fn effective_deadline(deadline: Time, cap: Option<Time>) -> Time {
    match cap {
        Some(departs_at) => deadline.min(departs_at),
        None => deadline,
    }
}

/// Fills one machine column of a [`ScoreTable`] for the bound-surviving
/// `(row, task)` pairs, every task scored against the same tail. Tasks
/// are processed four at a time — one shared walk over the tail drives
/// four independent accumulator lanes (distinct tasks → distinct
/// accumulators and CDF cursors), which gives the superscalar core four
/// dependency chains instead of one. Each lane performs exactly the
/// per-task walk of [`score_against`] (same impulse order, same CDF
/// values, same float operations), so the column is bit-identical to
/// per-pair scoring; the remainder lanes literally call it. The machine's
/// announced departure caps each deadline (see [`effective_deadline`]),
/// and under a cold-start model each task's CDF is selected warm-or-cold
/// from the machine's warm-container set via [`ScorerShared::cdf_for`].
fn score_column_scatter(
    tail: &Pmf,
    shared: &ScorerShared,
    machine: &MachineState,
    live: &[(usize, Task)],
    col: &mut [Option<PairScore>],
) {
    let cap = machine.announced_departure();
    let mut quads = live.chunks_exact(4);
    for quad in &mut quads {
        let tasks = [quad[0].1, quad[1].1, quad[2].1, quad[3].1];
        let scores = score_quad(tail, shared, machine, &tasks);
        for (&(row, _), score) in quad.iter().zip(scores) {
            col[row] = Some(score);
        }
    }
    for &(row, task) in quads.remainder() {
        col[row] = Some(score_against(
            tail,
            shared.cdf_for(task.type_id, machine),
            effective_deadline(task.deadline, cap),
            shared.policy,
        ));
    }
}

/// Four-lane unrolled [`score_against`] under the dropping scenarios; see
/// [`score_column_scatter`]. Scenario A (policy `None`) has no early-break
/// structure to share, so it stays on the scalar path.
fn score_quad(
    tail: &Pmf,
    shared: &ScorerShared,
    machine: &MachineState,
    quad: &[Task],
) -> [PairScore; 4] {
    let cap = machine.announced_departure();
    let cdfs = [
        shared.cdf_for(quad[0].type_id, machine),
        shared.cdf_for(quad[1].type_id, machine),
        shared.cdf_for(quad[2].type_id, machine),
        shared.cdf_for(quad[3].type_id, machine),
    ];
    let deadlines = [
        effective_deadline(quad[0].deadline, cap),
        effective_deadline(quad[1].deadline, cap),
        effective_deadline(quad[2].deadline, cap),
        effective_deadline(quad[3].deadline, cap),
    ];
    if shared.policy == DropPolicy::None {
        return [0, 1, 2, 3].map(|l| score_against(tail, cdfs[l], deadlines[l], shared.policy));
    }
    let (times, masses) = (tail.times(), tail.masses());
    let mut cursors = [
        CdfCursor::new(cdfs[0]),
        CdfCursor::new(cdfs[1]),
        CdfCursor::new(cdfs[2]),
        CdfCursor::new(cdfs[3]),
    ];
    let mut robustness = [0.0f64; 4];
    let mut startable = [0.0f64; 4];
    let mut weighted = [0.0f64; 4];
    let max_deadline = deadlines.iter().copied().max().expect("four lanes");
    for (&t, &p) in times.iter().zip(masses) {
        if t >= max_deadline {
            break; // sorted: no lane can start from here on
        }
        let tp = t as f64 * p;
        for lane in 0..4 {
            if t < deadlines[lane] {
                robustness[lane] += p * cursors[lane].at_descending(deadlines[lane] - t);
                startable[lane] += p;
                weighted[lane] += tp;
            }
        }
    }
    [0, 1, 2, 3].map(|lane| {
        let expected_completion = if startable[lane] > 0.0 {
            weighted[lane] / startable[lane] + cdfs[lane].mean
        } else {
            f64::INFINITY
        };
        PairScore {
            robustness: robustness[lane].min(1.0),
            expected_completion,
            mean_exec: cdfs[lane].mean,
        }
    })
}

/// The per-pair closed-form scoring kernel. Hot enough that it is
/// specialized by policy: under the dropping scenarios (B/C) the
/// full-availability accumulators are dead weight (only the startable
/// prefix matters), impulses at or past the deadline contribute nothing
/// (sorted times → early break), and a task that can never start —
/// `tail.min_time() >= δ`, the common case for the hopeless tasks that
/// pile up in an oversubscribed batch — short-circuits to the exact
/// values the full walk would produce. All three specializations are
/// bit-identical to the naive loop: the robustness sum visits the same
/// impulses in the same order with the same CDF values.
fn score_against(tail: &Pmf, cdf: &PetCdf, deadline: Time, policy: DropPolicy) -> PairScore {
    let (times, masses) = (tail.times(), tail.masses());
    let mut robustness = 0.0;
    let mut cursor = CdfCursor::new(cdf);
    let expected_completion = match policy {
        // Scenario A: every start happens eventually; the completion mean
        // is E[A] + E[E] over the full availability.
        DropPolicy::None => {
            let mut full_mass = 0.0;
            let mut full_weighted_start = 0.0;
            for (&t, &p) in times.iter().zip(masses) {
                full_mass += p;
                full_weighted_start += t as f64 * p;
                if t < deadline {
                    robustness += p * cursor.at_descending(deadline - t);
                }
            }
            if full_mass > 0.0 {
                full_weighted_start / full_mass + cdf.mean
            } else {
                f64::INFINITY
            }
        }
        // Scenarios B/C: only starts before δ execute.
        DropPolicy::PendingOnly | DropPolicy::All => {
            let mut startable_mass = 0.0;
            let mut weighted_start = 0.0;
            for (&t, &p) in times.iter().zip(masses) {
                if t >= deadline {
                    break; // sorted: nothing behind can start either
                }
                robustness += p * cursor.at_descending(deadline - t);
                startable_mass += p;
                weighted_start += t as f64 * p;
            }
            if startable_mass > 0.0 {
                weighted_start / startable_mass + cdf.mean
            } else {
                f64::INFINITY
            }
        }
    };
    // Float-noise guard: normalized masses can sum an ulp above 1.
    PairScore { robustness: robustness.min(1.0), expected_completion, mean_exec: cdf.mean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::analyze_queue;
    use hcsim_pmf::queue_step;
    use hcsim_sim::testkit;

    fn pet_single(points: &[(Time, f64)]) -> PetMatrix {
        PetMatrix::from_pmfs(1, 1, vec![Pmf::from_points(points).unwrap()])
    }

    fn task_with_deadline(deadline: Time) -> Task {
        Task { id: hcsim_model::TaskId(0), type_id: TaskTypeId(0), arrival: 0, deadline }
    }

    #[test]
    fn closed_form_matches_queue_step() {
        let pet = pet_single(&[(2, 0.25), (3, 0.5), (5, 0.25)]);
        let tail = Pmf::from_points(&[(1, 0.3), (4, 0.4), (9, 0.3)]).unwrap();
        for deadline in [1u64, 3, 5, 7, 9, 12, 20] {
            for policy in [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All] {
                let scorer = ProbScorer::new(&pet, policy, 64);
                let score = scorer.score_against_tail(&tail, TaskTypeId(0), MachineId(0), deadline);
                let step =
                    queue_step(&tail, pet.pmf(TaskTypeId(0), MachineId(0)), deadline, policy);
                assert!(
                    (score.robustness - step.robustness).abs() < 1e-12,
                    "robustness mismatch at δ={deadline} {policy:?}: {} vs {}",
                    score.robustness,
                    step.robustness
                );
                if policy != DropPolicy::None {
                    match &step.completion {
                        Some(c) => {
                            assert!(
                                (score.expected_completion - c.mean()).abs() < 1e-9,
                                "mean mismatch at δ={deadline} {policy:?}"
                            );
                        }
                        None => assert!(score.expected_completion.is_infinite()),
                    }
                }
            }
        }
    }

    #[test]
    fn policy_none_mean_is_additive() {
        let pet = pet_single(&[(2, 0.5), (6, 0.5)]);
        let tail = Pmf::from_points(&[(10, 0.5), (20, 0.5)]).unwrap();
        let scorer = ProbScorer::new(&pet, DropPolicy::None, 64);
        let score = scorer.score_against_tail(&tail, TaskTypeId(0), MachineId(0), 5);
        assert!((score.expected_completion - (15.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn mean_exec_reported() {
        let pet = pet_single(&[(2, 0.5), (6, 0.5)]);
        let scorer = ProbScorer::new(&pet, DropPolicy::All, 64);
        let score = scorer.score_against_tail(&Pmf::delta(0), TaskTypeId(0), MachineId(0), 100);
        assert!((score.mean_exec - 4.0).abs() < 1e-12);
        assert!((score.robustness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_cache_respects_version_and_event() {
        let pet = pet_single(&[(5, 1.0)]);
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        let machine = MachineState::new(MachineId(0), 4);
        scorer.begin_event(100);
        let t1 = scorer.tail(&machine).clone();
        assert_eq!(t1.min_time(), 100, "idle tail anchors at now");
        // Same event: cached.
        let t2 = scorer.tail(&machine).clone();
        assert_eq!(t1, t2);
        // New event at a later time: idle tail must move to the new now.
        scorer.begin_event(250);
        let t3 = scorer.tail(&machine).clone();
        assert_eq!(t3.min_time(), 250);
    }

    #[test]
    fn incremental_append_matches_from_scratch() {
        let pet = pet_single(&[(3, 0.25), (5, 0.5), (9, 0.25)]);
        let mut machine = MachineState::new(MachineId(0), 8);
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(10);
        // Grow the queue one task at a time; after every append the cached
        // tail (one incremental queue_step) must equal a from-scratch
        // analysis of the whole queue.
        for i in 0..6u32 {
            let t = Task {
                id: TaskId(i),
                type_id: TaskTypeId(0),
                arrival: 0,
                deadline: 30 + u64::from(i) * 20,
            };
            assert!(testkit::apply(&mut machine, testkit::QueueOp::Push(t)));
            let cached = scorer.tail(&machine).clone();
            let scratch = analyze_queue(&machine, &pet, 10, DropPolicy::All, 16);
            assert_eq!(cached, scratch.tail, "append {i}");
        }
    }

    #[test]
    fn incremental_mid_queue_drop_matches_from_scratch() {
        let pet = pet_single(&[(3, 0.25), (5, 0.5), (9, 0.25)]);
        let mut machine = MachineState::new(MachineId(0), 8);
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(0);
        for i in 0..5u32 {
            let t = Task {
                id: TaskId(i),
                type_id: TaskTypeId(0),
                arrival: 0,
                deadline: 40 + u64::from(i) * 25,
            };
            testkit::apply(&mut machine, testkit::QueueOp::Push(t));
        }
        let _ = scorer.tail(&machine);
        // Drop the middle task: the cache reuses the prefix ahead of it.
        testkit::apply(&mut machine, testkit::QueueOp::RemovePending(TaskId(2)));
        let cached = scorer.tail(&machine).clone();
        let scratch = analyze_queue(&machine, &pet, 0, DropPolicy::All, 16);
        assert_eq!(cached, scratch.tail);
    }

    #[test]
    fn slot_scores_match_analyze_queue() {
        let pet = pet_single(&[(4, 0.5), (8, 0.5)]);
        let mut machine = MachineState::new(MachineId(0), 6);
        for i in 0..3u32 {
            let t = Task {
                id: TaskId(i),
                type_id: TaskTypeId(0),
                arrival: 0,
                deadline: 20 + u64::from(i) * 15,
            };
            testkit::apply(&mut machine, testkit::QueueOp::Push(t));
        }
        testkit::apply(&mut machine, testkit::QueueOp::StartNext { now: 2, total_exec: 6 });
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(5);
        let slots = scorer.slot_scores(&machine).to_vec();
        let reference = analyze_queue(&machine, &pet, 5, DropPolicy::All, 16);
        assert_eq!(slots.len(), reference.slots.len());
        for (got, want) in slots.iter().zip(&reference.slots) {
            assert_eq!(got.task.id, want.task.id);
            assert_eq!(got.position, want.position);
            assert!((got.robustness - want.robustness).abs() == 0.0, "robustness drift");
            assert!((got.skewness - want.skewness).abs() == 0.0, "skewness drift");
        }
    }

    #[test]
    fn score_on_idle_machine_matches_direct() {
        let pet = pet_single(&[(2, 0.25), (3, 0.5), (5, 0.25)]);
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        let machine = MachineState::new(MachineId(0), 4);
        scorer.begin_event(10);
        let task = task_with_deadline(14);
        let score = scorer.score(&machine, &task);
        // Start at 10; completes by 14 iff exec <= 4 → 0.75.
        assert!((score.robustness - 0.75).abs() < 1e-12);
    }

    #[test]
    fn append_availability_matches_queue_step() {
        let pet = pet_single(&[(2, 0.25), (3, 0.5), (5, 0.25)]);
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 64);
        let tail = Pmf::from_points(&[(1, 0.3), (4, 0.4), (9, 0.3)]).unwrap();
        let exec = pet.pmf(TaskTypeId(0), MachineId(0));
        let got = scorer.append_availability(&tail, exec, 7);
        let mut want = queue_step(&tail, exec, 7, DropPolicy::All).availability;
        want.compact(64);
        assert_eq!(got, want);
        scorer.recycle(got);
    }

    /// Multi-machine fixture for the fan-out tests: `n` machines with
    /// heterogeneous queues over a 2-type PET.
    fn fanout_fixture(n: usize) -> (PetMatrix, Vec<MachineState>) {
        let pmfs: Vec<Pmf> = (0..2 * n)
            .map(|i| {
                let base = 2 + (i as u64 % 5);
                Pmf::from_points(&[(base, 0.25), (base + 3, 0.5), (base + 7, 0.25)]).unwrap()
            })
            .collect();
        let pet = PetMatrix::from_pmfs(2, n, pmfs);
        let machines: Vec<MachineState> = (0..n)
            .map(|m| {
                let depth = m % 4; // heterogeneous queue depths, incl. idle
                let pending: Vec<Task> = (0..depth as u32)
                    .map(|i| Task {
                        id: TaskId(m as u32 * 100 + i),
                        type_id: TaskTypeId((i % 2) as u16),
                        arrival: 0,
                        deadline: 60 + u64::from(i) * 25 + m as u64,
                    })
                    .collect();
                testkit::machine_with_pending(MachineId::from(m), 6, &pending)
            })
            .collect();
        (pet, machines)
    }

    #[test]
    fn score_table_matches_pairwise_scoring_bitwise() {
        // 20 machines crosses PARALLEL_MIN_MACHINES, so threads=4 takes a
        // real fan-out — on every engine. Every table entry must equal a
        // direct `score` call bit for bit, across sequential, scoped,
        // pooled, and work-stealing execution.
        let (pet, machines) = fanout_fixture(20);
        let tasks: Vec<Task> = (0..7u32)
            .map(|i| Task {
                id: TaskId(1_000 + i),
                type_id: TaskTypeId((i % 2) as u16),
                arrival: 0,
                deadline: 40 + u64::from(i) * 30,
            })
            .collect();
        let mut scorer_ref = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer_ref.begin_event(5);
        for (label, threads, backend) in [
            ("seq", 1, FanoutBackend::Scoped),
            ("scoped", 4, FanoutBackend::Scoped),
            ("pool", 4, FanoutBackend::Pool),
            ("steal", 4, FanoutBackend::Stealing),
        ] {
            let mut table = ScoreTable::new();
            let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
            scorer.begin_event(5);
            scorer.set_parallelism(threads, backend);
            assert_eq!(
                scorer.pool_active(),
                matches!(backend, FanoutBackend::Pool | FanoutBackend::Stealing) && threads > 1
            );
            table.rebuild(&mut scorer, &machines, &tasks, &|_| 0.0);
            for (i, task) in tasks.iter().enumerate() {
                for (m, machine) in machines.iter().enumerate() {
                    let direct = scorer_ref.score(machine, task);
                    let got = table.get(i, m).expect("free slot scored");
                    assert!(
                        got.robustness.to_bits() == direct.robustness.to_bits()
                            && got.expected_completion.to_bits()
                                == direct.expected_completion.to_bits()
                            && got.mean_exec.to_bits() == direct.mean_exec.to_bits(),
                        "{label} table ({i},{m}) diverged: {got:?} vs {direct:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn score_table_incremental_updates_track_live_state() {
        let (pet, mut machines) = fanout_fixture(6);
        let mut tasks: Vec<Task> = (0..5u32)
            .map(|i| Task {
                id: TaskId(500 + i),
                type_id: TaskTypeId((i % 2) as u16),
                arrival: 0,
                deadline: 50 + u64::from(i) * 20,
            })
            .collect();
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(3);
        let mut table = ScoreTable::new();
        table.rebuild(&mut scorer, &machines, &tasks, &|_| 0.0);
        assert_eq!(table.rows(), 5);
        // "Assign" task row 1 to machine 2: mutate the machine, drop the
        // row, refresh the column — the table must equal a fresh rebuild.
        let assigned = tasks.remove(1);
        assert!(testkit::apply(&mut machines[2], testkit::QueueOp::Push(assigned)));
        table.remove_row(1);
        table.refresh_machine(&mut scorer, &machines, &tasks, 2);
        // A new batch task slides into the window.
        let fresh = Task { id: TaskId(900), type_id: TaskTypeId(1), arrival: 0, deadline: 220 };
        tasks.push(fresh);
        table.push_row(&mut scorer, &machines, &fresh, &|_| 0.0);
        let mut reference = ScoreTable::new();
        let mut ref_scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        ref_scorer.begin_event(3);
        reference.rebuild(&mut ref_scorer, &machines, &tasks, &|_| 0.0);
        assert_eq!(table.rows(), reference.rows());
        for i in 0..tasks.len() {
            for m in 0..machines.len() {
                let (a, b) = (table.get(i, m), reference.get(i, m));
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert!(
                            a.robustness.to_bits() == b.robustness.to_bits()
                                && a.expected_completion.to_bits()
                                    == b.expected_completion.to_bits(),
                            "({i},{m}): {a:?} vs {b:?}"
                        );
                    }
                    (None, None) => {}
                    other => panic!("presence mismatch at ({i},{m}): {other:?}"),
                }
            }
        }
    }

    /// Decision-level agreement between a (possibly bound-skipped) table
    /// and exact scoring: wherever the exact best meets the threshold the
    /// table must return it bit for bit; wherever it doesn't, the table
    /// may return nothing or a value the reduction would defer anyway.
    fn assert_table_agrees_with_exact(
        table: &ScoreTable,
        scorer_ref: &mut ProbScorer,
        machines: &[MachineState],
        tasks: &[Task],
        threshold: &dyn Fn(TaskTypeId) -> f64,
    ) {
        for (row, task) in tasks.iter().enumerate() {
            let mut exact: Option<(usize, PairScore)> = None;
            for (m, machine) in machines.iter().enumerate() {
                if !machine.has_free_slot() {
                    continue;
                }
                let score = scorer_ref.score(machine, task);
                if exact.as_ref().is_none_or(|(_, b)| better_pair(&score, b)) {
                    exact = Some((m, score));
                }
            }
            let got = table.best_for_row(machines, row);
            let t = threshold(task.type_id);
            match exact {
                Some((m, s)) if s.robustness >= t => {
                    let (gm, gs) = got.unwrap_or_else(|| {
                        panic!("row {row}: exact best r={} ≥ {t} but table skipped", s.robustness)
                    });
                    assert_eq!(gm.index(), m, "row {row}: machine diverged");
                    assert!(
                        gs.robustness.to_bits() == s.robustness.to_bits()
                            && gs.expected_completion.to_bits() == s.expected_completion.to_bits(),
                        "row {row}: {gs:?} vs {s:?}"
                    );
                }
                _ => {
                    if let Some((_, gs)) = got {
                        assert!(
                            gs.robustness < t,
                            "row {row}: table returned r={} above threshold {t} \
                             where exact best was below",
                            gs.robustness
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn score_table_ensure_matches_rebuild_after_same_tick_changes() {
        // Two shards' worth of machines; a burst of mapping events at the
        // same instant with completions, a queue growth, a departed window
        // row, and an appended arrival in between. The revalidated table
        // must be cell-for-cell identical to a from-scratch rebuild.
        let (pet, mut machines) = fanout_fixture(40);
        let mut tasks: Vec<Task> = (0..8u32)
            .map(|i| Task {
                id: TaskId(1_000 + i),
                type_id: TaskTypeId((i % 2) as u16),
                arrival: 0,
                deadline: 45 + u64::from(i) * 25,
            })
            .collect();
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(3);
        let mut table = ScoreTable::new();
        assert!(
            !table.ensure(&mut scorer, &machines, &tasks, &|_| 0.0),
            "an empty table must rebuild"
        );
        // Next burst event, same tick: machine 5's queue grew (assignment),
        // machine 21 finished its pending task (completion), row 2 left the
        // window, a fresh arrival slid in.
        let grown = Task { id: TaskId(800), type_id: TaskTypeId(0), arrival: 0, deadline: 200 };
        assert!(testkit::apply(&mut machines[5], testkit::QueueOp::Push(grown)));
        assert!(testkit::apply(&mut machines[21], testkit::QueueOp::RemovePending(TaskId(2100))));
        tasks.remove(2);
        tasks.push(Task { id: TaskId(900), type_id: TaskTypeId(1), arrival: 0, deadline: 220 });
        scorer.begin_event(3);
        assert!(
            table.ensure(&mut scorer, &machines, &tasks, &|_| 0.0),
            "same tick + same epoch must take the reuse path"
        );
        let mut reference = ScoreTable::new();
        let mut ref_scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        ref_scorer.begin_event(3);
        reference.rebuild(&mut ref_scorer, &machines, &tasks, &|_| 0.0);
        assert_eq!(table.rows(), reference.rows());
        for i in 0..tasks.len() {
            for m in 0..machines.len() {
                match (table.get(i, m), reference.get(i, m)) {
                    (Some(a), Some(b)) => assert!(
                        a.robustness.to_bits() == b.robustness.to_bits()
                            && a.expected_completion.to_bits() == b.expected_completion.to_bits(),
                        "({i},{m}): {a:?} vs {b:?}"
                    ),
                    (None, None) => {}
                    other => panic!("presence mismatch at ({i},{m}): {other:?}"),
                }
            }
            assert_eq!(
                table.best_for_row(&machines, i),
                reference.best_for_row(&machines, i),
                "row {i} reduction diverged"
            );
        }
    }

    #[test]
    fn score_table_ensure_resurrects_rows_loosened_by_completions() {
        // 64 identical machines (2 shards), all with queues deep enough
        // that every shard bound falls below the threshold → the row is
        // fully skipped. A completion then empties one machine: ensure
        // must resurrect the row through that machine's shard and agree
        // with exact scoring.
        let n = 64;
        let pmfs: Vec<Pmf> = (0..n).map(|_| Pmf::from_points(&[(5, 1.0)]).unwrap()).collect();
        let pet = PetMatrix::from_pmfs(1, n, pmfs);
        let mut machines: Vec<MachineState> = (0..n)
            .map(|m| {
                let pending: Vec<Task> = (0..3u32)
                    .map(|i| Task {
                        id: TaskId(m as u32 * 10 + i),
                        type_id: TaskTypeId(0),
                        arrival: 0,
                        deadline: 500,
                    })
                    .collect();
                testkit::machine_with_pending(MachineId::from(m), 6, &pending)
            })
            .collect();
        let tasks =
            vec![Task { id: TaskId(9_000), type_id: TaskTypeId(0), arrival: 0, deadline: 12 }];
        let threshold = |_tt: TaskTypeId| 0.9;
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(0);
        let mut table = ScoreTable::new();
        table.rebuild(&mut scorer, &machines, &tasks, &threshold);
        assert!(
            table.best_for_row(&machines, 0).is_none(),
            "deep queues: the row must be bound-skipped everywhere"
        );
        // Machine 40 drains completely — its bound loosens to "start now".
        for i in 0..3u32 {
            assert!(testkit::apply(
                &mut machines[40],
                testkit::QueueOp::RemovePending(TaskId(400 + i))
            ));
        }
        scorer.begin_event(0);
        assert!(table.ensure(&mut scorer, &machines, &tasks, &threshold), "same tick: reuse");
        let (m, s) = table.best_for_row(&machines, 0).expect("resurrected through machine 40");
        assert_eq!(m.index(), 40);
        assert!((s.robustness - 1.0).abs() < 1e-12, "idle machine, exec 5 ≤ deadline 12");
        let mut ref_scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        ref_scorer.begin_event(0);
        assert_table_agrees_with_exact(&table, &mut ref_scorer, &machines, &tasks, &threshold);
    }

    #[test]
    fn score_table_ensure_rebuilds_on_tick_epoch_or_invalidate() {
        let (pet, machines) = fanout_fixture(20);
        let tasks = vec![Task { id: TaskId(1), type_id: TaskTypeId(0), arrival: 0, deadline: 90 }];
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(3);
        let mut table = ScoreTable::new();
        table.rebuild(&mut scorer, &machines, &tasks, &|_| 0.0);
        // A later tick must rebuild (scores move with `now`).
        scorer.begin_event(7);
        assert!(!table.ensure(&mut scorer, &machines, &tasks, &|_| 0.0), "new tick");
        // A membership epoch bump must rebuild (shard geometry may move).
        scorer.sync_membership(1, &machines);
        assert!(!table.ensure(&mut scorer, &machines, &tasks, &|_| 0.0), "new epoch");
        // Explicit invalidation (PAMF threshold drift) must rebuild.
        table.invalidate();
        assert!(!table.ensure(&mut scorer, &machines, &tasks, &|_| 0.0), "invalidated");
        // And with nothing changed, the reuse path holds.
        assert!(table.ensure(&mut scorer, &machines, &tasks, &|_| 0.0), "steady state");
    }

    #[test]
    fn hierarchical_bound_pass_agrees_with_exact_at_1024_machines() {
        // Full mega-cluster cardinality (32 shards), post-churn skewed
        // occupancy (a block of full machines, a block of absent ones),
        // and a near-tie threshold sitting exactly on the best row score —
        // the BOUND_MARGIN case the skip decision must survive.
        let n = 1024;
        let pmfs: Vec<Pmf> = (0..2 * n)
            .map(|i| {
                let base = 2 + (i as u64 % 7);
                Pmf::from_points(&[(base, 0.3), (base + 4, 0.5), (base + 11, 0.2)]).unwrap()
            })
            .collect();
        let pet = PetMatrix::from_pmfs(2, n, pmfs);
        let mut machines: Vec<MachineState> = (0..n)
            .map(|m| {
                let depth = if m < 300 { 2 } else { m % 3 }; // skewed occupancy
                let pending: Vec<Task> = (0..depth as u32)
                    .map(|i| Task {
                        id: TaskId(m as u32 * 10 + i),
                        type_id: TaskTypeId((i % 2) as u16),
                        arrival: 0,
                        deadline: 70 + u64::from(i) * 30 + (m % 16) as u64,
                    })
                    .collect();
                testkit::machine_with_pending(MachineId::from(m), 2, &pending)
            })
            .collect();
        // Churn skew: machines 600..680 failed.
        for m in machines.iter_mut().skip(600).take(80) {
            assert!(testkit::apply(m, testkit::QueueOp::Fail));
        }
        let tasks: Vec<Task> = (0..6u32)
            .map(|i| Task {
                id: TaskId(50_000 + i),
                type_id: TaskTypeId((i % 2) as u16),
                arrival: 0,
                deadline: 9 + u64::from(i) * 4, // tight: bounds actually skip shards
            })
            .collect();
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(1);
        // Pass 1: threshold 0 (everything live) to learn the exact bests.
        let mut table = ScoreTable::new();
        table.rebuild(&mut scorer, &machines, &tasks, &|_| 0.0);
        let exact_best: Vec<f64> = (0..tasks.len())
            .map(|row| table.best_for_row(&machines, row).map_or(0.0, |(_, s)| s.robustness))
            .collect();
        let mut ref_scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        ref_scorer.begin_event(1);
        // Pass 2: the near-tie threshold — exactly row 0's best score.
        let tie = exact_best.iter().copied().fold(0.0f64, f64::max);
        for threshold in [0.25, tie, (tie + 1e-6).min(1.0)] {
            let t = move |_tt: TaskTypeId| threshold;
            let mut bounded = ScoreTable::new();
            bounded.rebuild(&mut scorer, &machines, &tasks, &t);
            assert_table_agrees_with_exact(&bounded, &mut ref_scorer, &machines, &tasks, &t);
        }
    }

    #[test]
    fn score_table_skips_full_machines() {
        let pet = pet_single(&[(2, 0.5), (4, 0.5)]);
        let pending: Vec<Task> = (0..2u32)
            .map(|i| Task { id: TaskId(i), type_id: TaskTypeId(0), arrival: 0, deadline: 100 })
            .collect();
        let full = testkit::machine_with_pending(MachineId(0), 2, &pending);
        assert!(!full.has_free_slot());
        let machines = vec![full];
        let tasks = vec![Task { id: TaskId(9), type_id: TaskTypeId(0), arrival: 0, deadline: 50 }];
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(0);
        scorer.set_parallelism(4, FanoutBackend::Pool);
        assert!(!scorer.pool_active(), "1-machine system stays below the pool gate");
        let mut table = ScoreTable::new();
        table.rebuild(&mut scorer, &machines, &tasks, &|_| 0.0);
        assert_eq!(table.get(0, 0), None);
        assert!(table.best_for_row(&machines, 0).is_none());
    }

    #[test]
    fn warm_caches_is_execution_mode_invariant() {
        let (pet, machines) = fanout_fixture(20);
        let mut cold = ProbScorer::new(&pet, DropPolicy::All, 16);
        cold.begin_event(7);
        for (label, threads, backend) in
            [("scoped", 4, FanoutBackend::Scoped), ("pool", 4, FanoutBackend::Pool)]
        {
            let mut warm = ProbScorer::new(&pet, DropPolicy::All, 16);
            warm.begin_event(7);
            warm.set_parallelism(threads, backend);
            warm.warm_caches(&machines, true);
            for machine in &machines {
                if machine.occupancy() == 0 {
                    continue;
                }
                let a = warm.slot_scores(machine).to_vec();
                let b = cold.slot_scores(machine).to_vec();
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert!(
                        x.robustness.to_bits() == y.robustness.to_bits()
                            && x.skewness.to_bits() == y.skewness.to_bits(),
                        "{label}: machine {} diverged",
                        machine.id()
                    );
                }
                // The tails must also be byte-identical.
                assert_eq!(warm.tail(machine).clone(), cold.tail(machine).clone());
            }
        }
    }

    #[test]
    fn pool_single_cell_queries_match_local() {
        // The between-rounds request path (score / tail / slot_scores
        // through the pool's cell handle) must serve exactly what local
        // cells serve.
        let (pet, machines) = fanout_fixture(PARALLEL_MIN_MACHINES + 2);
        let mut local = ProbScorer::new(&pet, DropPolicy::All, 16);
        let mut pooled = ProbScorer::new(&pet, DropPolicy::All, 16);
        local.begin_event(9);
        pooled.begin_event(9);
        pooled.set_parallelism(4, FanoutBackend::Pool);
        assert!(pooled.pool_active());
        let task = Task { id: TaskId(77), type_id: TaskTypeId(1), arrival: 0, deadline: 90 };
        for machine in &machines {
            let a = local.score(machine, &task);
            let b = pooled.score(machine, &task);
            assert_eq!(a.robustness.to_bits(), b.robustness.to_bits());
            assert_eq!(a.expected_completion.to_bits(), b.expected_completion.to_bits());
            assert_eq!(local.tail(machine).clone(), pooled.tail(machine).clone());
            if machine.occupancy() > 0 {
                assert_eq!(local.slot_scores(machine), pooled.slot_scores(machine));
            }
        }
    }

    #[test]
    fn membership_sync_regates_pool_and_releases_departed_chains() {
        let n = PARALLEL_MIN_MACHINES + 4;
        let (pet, mut machines) = fanout_fixture(n);
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(3);
        scorer.sync_membership(0, &machines);
        assert_eq!(scorer.schedulable_machines(), n);
        scorer.set_parallelism(4, FanoutBackend::Pool);
        assert!(scorer.pool_active());
        scorer.warm_caches(&machines, false);
        // Churn: fail 5 and drain 4 machines → below the fan-out floor.
        for m in machines.iter_mut().take(5) {
            assert!(testkit::apply(m, testkit::QueueOp::Fail));
        }
        for m in machines.iter_mut().skip(5).take(4) {
            testkit::apply(m, testkit::QueueOp::BeginDrain);
        }
        scorer.sync_membership(1, &machines);
        assert_eq!(scorer.schedulable_machines(), n - 9);
        scorer.set_parallelism(4, FanoutBackend::Pool);
        assert!(!scorer.pool_active(), "cluster shrank below the pool gate");
        // Every tail — survivors from their migrated warm cells, departed
        // machines rebuilt from scratch — must match a cold scorer.
        let mut cold = ProbScorer::new(&pet, DropPolicy::All, 16);
        cold.begin_event(3);
        for machine in &machines {
            assert_eq!(
                scorer.tail(machine).clone(),
                cold.tail(machine).clone(),
                "machine {} diverged after churn",
                machine.id()
            );
        }
        // Re-join the failed machines: the pool comes back, warm state
        // (whatever survived) migrates in.
        for m in machines.iter_mut().take(5) {
            assert!(testkit::apply(m, testkit::QueueOp::Join));
        }
        scorer.sync_membership(2, &machines);
        scorer.set_parallelism(4, FanoutBackend::Pool);
        assert!(scorer.pool_active(), "grown cluster re-builds the pool");
        // Same epoch again: a no-op (the steady-state path).
        scorer.sync_membership(2, &machines);
        assert_eq!(scorer.schedulable_machines(), n - 4);
    }

    #[test]
    fn score_table_gives_absent_machines_empty_columns() {
        let (pet, mut machines) = fanout_fixture(6);
        testkit::apply(&mut machines[1], testkit::QueueOp::BeginDrain);
        testkit::apply(&mut machines[2], testkit::QueueOp::Fail);
        let tasks = vec![Task { id: TaskId(9), type_id: TaskTypeId(0), arrival: 0, deadline: 400 }];
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(0);
        scorer.sync_membership(1, &machines);
        let mut table = ScoreTable::new();
        table.rebuild(&mut scorer, &machines, &tasks, &|_| 0.0);
        for m in [1usize, 2] {
            assert_eq!(table.get(0, m), None, "absent machine {m} must not be scored");
        }
        let (best_machine, _) = table.best_for_row(&machines, 0).expect("survivors scored");
        assert!(machines[best_machine.index()].is_schedulable());
    }

    #[test]
    fn set_parallelism_migrates_cells_without_losing_state() {
        // Local → pooled → local round-trips keep every cached chain: the
        // tails served after each migration are identical, and the reshard
        // path (different thread count) works.
        let (pet, machines) = fanout_fixture(PARALLEL_MIN_MACHINES);
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        scorer.begin_event(4);
        let baseline: Vec<Pmf> = machines.iter().map(|m| scorer.tail(m).clone()).collect();
        scorer.set_parallelism(4, FanoutBackend::Pool);
        assert!(scorer.pool_active());
        scorer.set_parallelism(2, FanoutBackend::Pool); // reshard
        assert!(scorer.pool_active());
        scorer.set_parallelism(4, FanoutBackend::Scoped); // move back
        assert!(!scorer.pool_active());
        for (machine, want) in machines.iter().zip(&baseline) {
            assert_eq!(scorer.tail(machine), want, "machine {} lost its chain", machine.id());
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_pmf(max_t: Time, max_n: usize) -> impl Strategy<Value = Pmf> {
            prop::collection::vec((1..max_t, 0.01f64..1.0), 1..max_n).prop_map(|pts| {
                let mut p = Pmf::from_points(&pts).unwrap();
                p.normalize();
                p
            })
        }

        proptest! {
            #[test]
            fn closed_form_always_matches_queue_step(
                tail in arb_pmf(300, 12),
                exec in arb_pmf(80, 10),
                deadline in 1u64..400,
                policy_idx in 0usize..3,
            ) {
                let policy =
                    [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All][policy_idx];
                let pet = PetMatrix::from_pmfs(1, 1, vec![exec.clone()]);
                let scorer = ProbScorer::new(&pet, policy, 256);
                let score =
                    scorer.score_against_tail(&tail, TaskTypeId(0), MachineId(0), deadline);
                let step = queue_step(&tail, &exec, deadline, policy);
                prop_assert!((score.robustness - step.robustness).abs() < 1e-9);
                if policy != DropPolicy::None {
                    match &step.completion {
                        Some(c) => prop_assert!(
                            (score.expected_completion - c.mean()).abs() < 1e-6
                        ),
                        None => prop_assert!(score.expected_completion.is_infinite()),
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]
            /// The hierarchical bound pass never changes a decision: over
            /// random multi-shard clusters with skewed occupancy (full
            /// machines, failed machines, empty ones) and an arbitrary
            /// threshold — including thresholds landing right on a row's
            /// best score — the bounded table agrees with exact scoring.
            #[test]
            fn hierarchical_bound_pass_agrees_with_exact(
                depths in prop::collection::vec((0usize..5, 0usize..8), 33..72),
                deadlines in prop::collection::vec(5u64..120, 1..6),
                threshold in 0.0f64..1.0,
            ) {
                let n = depths.len();
                let pmfs: Vec<Pmf> = (0..2 * n)
                    .map(|i| {
                        let base = 2 + (i as u64 % 5);
                        Pmf::from_points(&[(base, 0.25), (base + 3, 0.5), (base + 7, 0.25)])
                            .unwrap()
                    })
                    .collect();
                let pet = PetMatrix::from_pmfs(2, n, pmfs);
                let mut machines: Vec<MachineState> = depths
                    .iter()
                    .enumerate()
                    .map(|(m, &(depth, _))| {
                        let pending: Vec<Task> = (0..depth as u32)
                            .map(|i| Task {
                                id: TaskId(m as u32 * 100 + i),
                                type_id: TaskTypeId((i % 2) as u16),
                                arrival: 0,
                                deadline: 40 + u64::from(i) * 20 + m as u64,
                            })
                            .collect();
                        testkit::machine_with_pending(MachineId::from(m), 4, &pending)
                    })
                    .collect();
                for (machine, &(_, fail)) in machines.iter_mut().zip(&depths) {
                    if fail == 0 {
                        testkit::apply(machine, testkit::QueueOp::Fail);
                    }
                }
                let tasks: Vec<Task> = deadlines
                    .iter()
                    .enumerate()
                    .map(|(i, &deadline)| Task {
                        id: TaskId(40_000 + i as u32),
                        type_id: TaskTypeId((i % 2) as u16),
                        arrival: 0,
                        deadline,
                    })
                    .collect();
                let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
                scorer.begin_event(2);
                let mut ref_scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
                ref_scorer.begin_event(2);
                // Pass 1: exact bests (threshold 0 keeps everything live).
                let mut flat = ScoreTable::new();
                flat.rebuild(&mut scorer, &machines, &tasks, &|_| 0.0);
                let tie = (0..tasks.len())
                    .filter_map(|row| flat.best_for_row(&machines, row))
                    .map(|(_, s)| s.robustness)
                    .fold(0.0f64, f64::max);
                // Pass 2: the random threshold AND the exact near-tie one.
                for t in [threshold, tie] {
                    let thr = move |_tt: TaskTypeId| t;
                    let mut bounded = ScoreTable::new();
                    bounded.rebuild(&mut scorer, &machines, &tasks, &thr);
                    assert_table_agrees_with_exact(
                        &bounded, &mut ref_scorer, &machines, &tasks, &thr,
                    );
                }
            }
        }
    }

    #[test]
    fn hopeless_deadline_scores_zero() {
        let pet = pet_single(&[(2, 1.0)]);
        let mut scorer = ProbScorer::new(&pet, DropPolicy::All, 16);
        let machine = MachineState::new(MachineId(0), 4);
        scorer.begin_event(100);
        let score = scorer.score(&machine, &task_with_deadline(50));
        assert_eq!(score.robustness, 0.0);
        assert!(score.expected_completion.is_infinite());
    }
}
