//! The scalar two-phase baselines of §VI-C: MM, MSD, MMU.
//!
//! All three share phase 1 — for each unmapped task, find the machine with
//! the minimum *expected* completion time among machines with a free queue
//! slot — and differ in how phase 2 selects which provisional pair to
//! commit:
//!
//! * **MM** (MinCompletion-MinCompletion): the pair with the minimum
//!   expected completion time.
//! * **MSD** (MinCompletion-SoonestDeadline): the pair whose task deadline
//!   is soonest (tie → minimum completion).
//! * **MMU** (MinCompletion-MaxUrgency): the pair with maximum urgency
//!   `U = 1/(δ − E[C])`.
//!
//! The committed assignment occupies a slot and changes that machine's
//! expected availability, so the process repeats until machine queues are
//! full or the batch is exhausted — exactly the paper's loop.

use crate::scalar::{expected_available, urgency};
use hcsim_model::{MachineId, Task, TaskId, Time};
use hcsim_sim::{MapContext, Mapper};

/// Phase-2 selection rule distinguishing MM / MSD / MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase2Rule {
    /// MM: commit the globally minimal expected completion time.
    MinCompletion,
    /// MSD: commit the soonest deadline (tie → min completion).
    SoonestDeadline,
    /// MMU: commit the maximum urgency.
    MaxUrgency,
}

/// A scalar two-phase batch mapper (MM / MSD / MMU).
#[derive(Debug, Clone)]
pub struct ScalarMapper {
    rule: Phase2Rule,
    name: &'static str,
    /// Scratch: expected availability per machine, refreshed per iteration.
    avail: Vec<f64>,
}

impl ScalarMapper {
    /// MinCompletion-MinCompletion.
    #[must_use]
    pub fn mm() -> Self {
        Self { rule: Phase2Rule::MinCompletion, name: "MM", avail: Vec::new() }
    }

    /// MinCompletion-SoonestDeadline.
    #[must_use]
    pub fn msd() -> Self {
        Self { rule: Phase2Rule::SoonestDeadline, name: "MSD", avail: Vec::new() }
    }

    /// MinCompletion-MaxUrgency.
    #[must_use]
    pub fn mmu() -> Self {
        Self { rule: Phase2Rule::MaxUrgency, name: "MMU", avail: Vec::new() }
    }

    /// The phase-2 rule in use.
    #[must_use]
    pub fn rule(&self) -> Phase2Rule {
        self.rule
    }

    /// Phase 1: best machine (minimum expected completion) for `task`
    /// among machines with free slots. Returns `(machine, completion)`.
    fn best_machine(&self, ctx: &MapContext<'_>, task: &Task) -> Option<(MachineId, f64)> {
        let pet = &ctx.spec().pet;
        let mut best: Option<(MachineId, f64)> = None;
        for m in 0..ctx.num_machines() {
            let machine_id = MachineId::from(m);
            if !ctx.machine(machine_id).has_free_slot() {
                continue;
            }
            let completion = self.avail[m] + pet.mean_exec(task.type_id, machine_id);
            if best.is_none_or(|(_, c)| completion < c) {
                best = Some((machine_id, completion));
            }
        }
        best
    }

    fn refresh_availability(&mut self, ctx: &MapContext<'_>) {
        let pet = &ctx.spec().pet;
        let now = ctx.now();
        self.avail.clear();
        self.avail.extend(
            (0..ctx.num_machines())
                .map(|m| expected_available(ctx.machine(MachineId::from(m)), pet, now)),
        );
    }
}

/// A provisional phase-1 pair.
#[derive(Debug, Clone, Copy)]
struct Pair {
    task: TaskId,
    deadline: Time,
    machine: MachineId,
    completion: f64,
}

impl Mapper for ScalarMapper {
    fn name(&self) -> &str {
        self.name
    }

    fn on_mapping_event(&mut self, ctx: &mut MapContext<'_>) {
        if ctx.total_free_slots() == 0 || ctx.batch().is_empty() {
            return;
        }
        // Expected availabilities are a function of each machine's own
        // queue, so they are computed once per event and then patched
        // point-wise: a commit only changes the assigned machine.
        self.refresh_availability(ctx);
        loop {
            if ctx.total_free_slots() == 0 || ctx.batch().is_empty() {
                break;
            }

            // Phase 1: provisional (task, best machine) pairs.
            let mut pairs: Vec<Pair> = Vec::with_capacity(ctx.batch().len());
            for task in ctx.batch() {
                if let Some((machine, completion)) = self.best_machine(ctx, task) {
                    pairs.push(Pair {
                        task: task.id,
                        deadline: task.deadline,
                        machine,
                        completion,
                    });
                }
            }
            let Some(chosen) = self.select(&pairs) else { break };
            ctx.assign(chosen.task, chosen.machine).expect("pair referenced a free slot");
            // Only the assigned machine's availability moved.
            self.avail[chosen.machine.index()] =
                expected_available(ctx.machine(chosen.machine), &ctx.spec().pet, ctx.now());
        }
    }
}

impl ScalarMapper {
    fn select(&self, pairs: &[Pair]) -> Option<Pair> {
        match self.rule {
            Phase2Rule::MinCompletion => {
                pairs.iter().min_by(|a, b| a.completion.total_cmp(&b.completion)).copied()
            }
            Phase2Rule::SoonestDeadline => pairs
                .iter()
                .min_by(|a, b| {
                    a.deadline.cmp(&b.deadline).then_with(|| a.completion.total_cmp(&b.completion))
                })
                .copied(),
            Phase2Rule::MaxUrgency => pairs
                .iter()
                .max_by(|a, b| {
                    urgency(a.deadline, a.completion)
                        .total_cmp(&urgency(b.deadline, b.completion))
                        // Tie (e.g. both infinite): prefer min completion.
                        .then_with(|| b.completion.total_cmp(&a.completion))
                })
                .copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsim_model::{MachineSpec, PetBuilder, PriceTable, SystemSpec, TaskTypeId, TaskTypeSpec};
    use hcsim_sim::{run_simulation, SimConfig};
    use hcsim_stats::SeedSequence;

    /// Two machines: machine 0 fast for type 0, machine 1 fast for type 1.
    fn affinity_spec() -> SystemSpec {
        let mut rng = SeedSequence::new(5).stream(0);
        let (pet, truth) = PetBuilder::new()
            .shape_range(50.0, 50.0)
            .build(&[vec![10.0, 40.0], vec![40.0, 10.0]], &mut rng);
        SystemSpec {
            machines: vec![MachineSpec { name: "m0".into() }, MachineSpec { name: "m1".into() }],
            task_types: vec![
                TaskTypeSpec { name: "t0".into() },
                TaskTypeSpec { name: "t1".into() },
            ],
            pet,
            truth,
            prices: PriceTable::uniform(2, 1.0),
            queue_capacity: 6,
            coldstart: None,
        }
        .validated()
    }

    fn task(id: u32, tt: u16, arrival: Time, deadline: Time) -> Task {
        Task { id: TaskId(id), type_id: TaskTypeId(tt), arrival, deadline }
    }

    #[test]
    fn mm_exploits_affinity() {
        let spec = affinity_spec();
        // Alternating types, generous deadlines: MM should route type 0 to
        // machine 0 and type 1 to machine 1.
        let tasks: Vec<Task> = (0..8).map(|i| task(i, (i % 2) as u16, 0, 10_000)).collect();
        let mut mapper = ScalarMapper::mm();
        let mut rng = SeedSequence::new(6).stream(0);
        let report = run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut rng);
        for rec in &report.records {
            let expected_machine = rec.task.type_id.index();
            assert_eq!(
                rec.machine.unwrap().index(),
                expected_machine,
                "task {:?} misrouted",
                rec.task
            );
        }
        assert_eq!(report.metrics.outcomes.on_time, 8);
    }

    /// One machine with a queue of one slot: a long blocker forces later
    /// arrivals to accumulate in the batch, exposing phase-2 ordering.
    fn bottleneck_spec() -> SystemSpec {
        let mut rng = SeedSequence::new(15).stream(0);
        let (pet, truth) = PetBuilder::new().shape_range(50.0, 50.0).build(&[vec![50.0]], &mut rng);
        SystemSpec {
            machines: vec![MachineSpec { name: "m0".into() }],
            task_types: vec![TaskTypeSpec { name: "t0".into() }],
            pet,
            truth,
            prices: PriceTable::uniform(1, 1.0),
            queue_capacity: 1,
            coldstart: None,
        }
        .validated()
    }

    /// Runs the bottleneck scenario and returns (start of task1, start of
    /// task2) — task 2 arrives later but is more deadline-pressed.
    fn bottleneck_starts(mapper: &mut ScalarMapper, seed: u64) -> (Time, Time) {
        let spec = bottleneck_spec();
        let tasks = vec![
            task(0, 0, 0, 100_000), // blocker: occupies the only slot
            task(1, 0, 1, 100_000), // relaxed deadline
            task(2, 0, 2, 400),     // pressed deadline, arrives last
        ];
        let mut rng = SeedSequence::new(seed).stream(0);
        let report = run_simulation(&spec, SimConfig::untrimmed(), &tasks, mapper, &mut rng);
        let start_of = |id: u32| {
            report
                .records
                .iter()
                .find(|r| r.task.id.0 == id)
                .and_then(|r| r.started_at)
                .unwrap_or(u64::MAX)
        };
        (start_of(1), start_of(2))
    }

    #[test]
    fn msd_commits_soonest_deadline_first() {
        let (relaxed, pressed) = bottleneck_starts(&mut ScalarMapper::msd(), 7);
        assert!(
            pressed < relaxed,
            "MSD must start the sooner deadline first: relaxed {relaxed}, pressed {pressed}"
        );
    }

    #[test]
    fn mmu_prioritizes_urgent_tasks() {
        let (relaxed, pressed) = bottleneck_starts(&mut ScalarMapper::mmu(), 8);
        assert!(
            pressed < relaxed,
            "MMU must start the more urgent task first: relaxed {relaxed}, pressed {pressed}"
        );
    }

    #[test]
    fn mm_ignores_deadlines_entirely() {
        // MM commits min completion; with identical types the earlier batch
        // position wins the tie deterministically, so the relaxed task
        // (arrived first) starts first despite the pressed deadline behind.
        let (relaxed, pressed) = bottleneck_starts(&mut ScalarMapper::mm(), 9);
        assert!(
            relaxed < pressed,
            "MM should be deadline-blind: relaxed {relaxed}, pressed {pressed}"
        );
    }

    #[test]
    fn names_and_rules() {
        assert_eq!(ScalarMapper::mm().name(), "MM");
        assert_eq!(ScalarMapper::msd().name(), "MSD");
        assert_eq!(ScalarMapper::mmu().name(), "MMU");
        assert_eq!(ScalarMapper::mm().rule(), Phase2Rule::MinCompletion);
        assert_eq!(ScalarMapper::msd().rule(), Phase2Rule::SoonestDeadline);
        assert_eq!(ScalarMapper::mmu().rule(), Phase2Rule::MaxUrgency);
    }

    #[test]
    fn fills_queues_until_capacity() {
        let spec = affinity_spec();
        // 20 simultaneous tasks, capacity 2×6: exactly 12 map immediately,
        // the rest stay in the batch (and expire or map later).
        let tasks: Vec<Task> = (0..20).map(|i| task(i, 0, 0, 10_000)).collect();
        let mut mapper = ScalarMapper::mm();
        let mut rng = SeedSequence::new(9).stream(0);
        let report = run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut rng);
        // With generous deadlines everything eventually completes.
        assert_eq!(report.metrics.outcomes.on_time, 20);
    }
}
