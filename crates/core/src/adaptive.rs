//! The adaptive pruning controller: closes the §V threshold loop online.
//!
//! The paper fixes the dropping and deferring thresholds offline (§VII-C
//! sweeps them and settles on 50 % / 90 % for its stationary workloads).
//! Under non-stationary load — bursts, diurnal ramps, regime switches —
//! and cluster churn, no single static pair is right for the whole run:
//! the best aggression level moves with the load. The
//! [`AdaptiveController`] runs the §VII-C sweep *online*, from two
//! complementary signals:
//!
//! * **Feed-forward pressure** — task outcomes *lag* a load storm: the
//!   flood only registers once its casualties miss their deadlines, after
//!   the machines are already clogged with weak admissions. The Eq. 8
//!   oversubscription detector watches queue misses per mapping event and
//!   fires first, so it schedules the operating point directly. While it
//!   is *engaged* the thresholds jump to base plus
//!   [`AdaptiveConfig::pressure_boost`] (the Fig. 7 direction — prune
//!   harder under oversubscription — applied the moment oversubscription
//!   is *detected* rather than a window after it is suffered). In the
//!   opposite direction, a slow average of the detector *level* with its
//!   own hysteresis certifies *sustained deep calm*, and only then do the
//!   thresholds drop [`AdaptiveConfig::calm_relax`] *below* base (§VII-C's
//!   own sweeps show conservative pairs dominate at low oversubscription —
//!   deferral wastes healthy capacity). The toggle being merely off is not
//!   enough: during a gradual ramp-up the fast toggle lags the queue
//!   build-up, and relaxing into that would admit weak work exactly when
//!   capacity is about to run out.
//! * **Gain-scheduled perturb-and-observe trim** — the windowed loop
//!   maximizes the on-time completion rate directly, and it learns *two*
//!   operating points, one per detector phase: a calm trim (applied while
//!   the detector is disengaged, first probing toward admitting more)
//!   and a storm trim (applied on top of the boost while engaged, first
//!   probing toward shedding more). Each window of terminal outcomes
//!   moves the active phase's trim one step along the sweep ray and
//!   keeps the direction while the windowed on-time rate improves,
//!   reversing when it degrades; a phase flip *jumps* to the other
//!   phase's remembered trim instead of re-traveling the distance.
//!   Crucially the objective counts *pruned tasks against* the rate: a
//!   controller targeting the deadline-miss rate alone can always
//!   flatter its signal by dropping more (a dropped task cannot miss a
//!   deadline), and walks to maximum aggression on every workload.
//!   Extremum-seeking on the on-time rate has no such perverse incentive
//!   — more dropping only sticks when completions actually rise.
//! * **Per-class relief** — a workload class whose failure share (missed
//!   *or pruned*) overshoots the global rate accumulates *relief*, which
//!   relaxes (lowers) both of its thresholds exactly like PAMF's
//!   sufferage knob — shielding the class from starvation — and decays
//!   once the class recovers. Per-class thresholds thereby subsume the
//!   static fairness factor.
//!
//! The controller is driven from [`Mapper::on_task_finished`]
//! (terminal-record order equals event order, so its trajectory is
//! bit-identical across all fan-out execution modes), and its full dynamic
//! state rides in the PAM snapshot blob, so a crash/restore resumes the
//! adaptation trajectory exactly.
//!
//! [`Mapper::on_task_finished`]: hcsim_sim::Mapper::on_task_finished

use hcsim_model::{TaskOutcome, TaskTypeId};
use serde::{Deserialize, Serialize};

/// How far deferral moves per unit of *upward* dropping movement along
/// the sweep ray: the §VII-C sweeps move the defer threshold a few points
/// where they move dropping by twenty (it already sits close to 1).
/// *Downward* the ray runs at unit slope — the sweep grid keeps the
/// defer−drop gap constant on the conservative side (50/90 → 30/70) —
/// see [`defer_shift`].
const DEFER_RATIO: f64 = 0.25;

/// Maps a dropping-threshold shift onto the deferral axis following the
/// §VII-C sweep geometry: quarter gain upward, unit gain downward.
fn defer_shift(drop_shift: f64) -> f64 {
    if drop_shift < 0.0 {
        drop_shift
    } else {
        DEFER_RATIO * drop_shift
    }
}

/// A class must overshoot the global failure rate by this margin before
/// relief accumulates (keeps sampling noise from feeding the fairness
/// loop).
const RELIEF_MARGIN: f64 = 0.05;

/// Smoothing factor of the slow detector-level average behind the
/// deep-calm signal (the detector's own λ = 0.9 EWMA reacts within one
/// mapping event; the calm signal must instead certify *sustained*
/// health, so it averages the fast level over roughly the last ten
/// events).
const SLOW_LAMBDA: f64 = 0.1;

/// Deep calm engages once the slow level average falls to this fraction
/// of the detector's toggle-on point…
const DEEP_CALM_ENTER: f64 = 0.2;

/// …and disengages once it climbs back to this fraction (hysteresis, like
/// the detector's own Schmitt trigger, so the relaxation cannot flap).
const DEEP_CALM_EXIT: f64 = 0.4;

/// Knobs of the adaptive threshold controller, with conservative defaults
/// (small steps, wide clamps) that track load without oscillating.
///
/// Attach it to a [`PruningConfig`](crate::PruningConfig) to switch PAM
/// from the paper's static thresholds to the online controller:
///
/// ```
/// use hcsim_core::{AdaptiveConfig, Pam, PruningConfig};
///
/// let adaptive = AdaptiveConfig {
///     window: 16,      // re-decide every 16 terminal outcomes
///     calm_relax: 0.1, // relax less aggressively in sustained calm
///     ..AdaptiveConfig::default()
/// };
/// adaptive.validate();
/// let _mapper = Pam::new(PruningConfig {
///     adaptive: Some(adaptive),
///     ..PruningConfig::default()
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Terminal outcomes per adjustment window: the controller re-decides
    /// every `window` finished tasks. Smaller reacts faster; larger
    /// estimates the on-time rate more stably.
    pub window: usize,
    /// Dropping-threshold movement per adjustment, in robustness units
    /// (deferral follows at quarter gain).
    pub step: f64,
    /// Per-class relief gained per window while a class's failure rate
    /// overshoots the global rate (and lost per window once it recovers) —
    /// the dynamic replacement for PAMF's static fairness factor.
    pub relief_step: f64,
    /// Cap on accumulated per-class relief.
    pub relief_max: f64,
    /// Feed-forward aggression added to the dropping threshold (quarter
    /// gain on deferral) the moment the Eq. 8 oversubscription detector
    /// engages, removed the moment it disengages.
    pub pressure_boost: f64,
    /// Feed-forward *relaxation* subtracted from both thresholds (unit
    /// gain on deferral, down the sweep ray) while the slow-averaged
    /// detector level certifies sustained deep calm: a healthy system
    /// should defer far less readily than the storm-tuned base pair does.
    pub calm_relax: f64,
    /// Clamp range for the effective dropping threshold.
    pub drop_min: f64,
    /// Upper clamp for the effective dropping threshold.
    pub drop_max: f64,
    /// Clamp range for the effective deferring threshold.
    pub defer_min: f64,
    /// Upper clamp for the effective deferring threshold.
    pub defer_max: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            window: 32,
            step: 0.01,
            relief_step: 0.05,
            relief_max: 0.30,
            pressure_boost: 0.0,
            calm_relax: 0.20,
            drop_min: 0.20,
            drop_max: 0.90,
            defer_min: 0.50,
            defer_max: 0.98,
        }
    }
}

impl AdaptiveConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on an empty window, non-positive steps, rates outside
    /// `[0, 1]`, or inverted clamp ranges.
    pub fn validate(&self) {
        assert!(self.window >= 1, "adaptive window must be positive");
        assert!(self.step > 0.0 && self.step.is_finite(), "step must be positive");
        assert!(self.relief_step >= 0.0, "relief step must be non-negative");
        assert!((0.0..=1.0).contains(&self.relief_max), "relief cap in [0,1]");
        assert!(
            self.pressure_boost >= 0.0 && self.pressure_boost.is_finite(),
            "pressure boost must be non-negative"
        );
        assert!(
            self.calm_relax >= 0.0 && self.calm_relax.is_finite(),
            "calm relax must be non-negative"
        );
        assert!(
            0.0 <= self.drop_min && self.drop_min <= self.drop_max && self.drop_max <= 1.0,
            "drop clamp range must satisfy 0 <= min <= max <= 1"
        );
        assert!(
            0.0 <= self.defer_min && self.defer_min <= self.defer_max && self.defer_max <= 1.0,
            "defer clamp range must satisfy 0 <= min <= max <= 1"
        );
    }
}

/// Sliding-window outcome counters for one adjustment period.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WindowCounts {
    on_time: u64,
    late: u64,
    expired_unstarted: u64,
    expired_on_machine: u64,
    pruned: u64,
    shed: u64,
}

impl WindowCounts {
    fn add(&mut self, outcome: TaskOutcome) {
        match outcome {
            TaskOutcome::CompletedOnTime | TaskOutcome::CompletedApprox => self.on_time += 1,
            TaskOutcome::CompletedLate => self.late += 1,
            TaskOutcome::ExpiredUnstarted => self.expired_unstarted += 1,
            TaskOutcome::ExpiredExecuting | TaskOutcome::Unfinished => {
                self.expired_on_machine += 1;
            }
            TaskOutcome::PrunedDropped => self.pruned += 1,
            TaskOutcome::Shed => self.shed += 1,
        }
    }

    fn total(&self) -> u64 {
        self.on_time
            + self.late
            + self.expired_unstarted
            + self.expired_on_machine
            + self.pruned
            + self.shed
    }
}

/// Per-workload-class window state: failure accounting plus accumulated
/// fairness relief.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ClassState {
    failed: u64,
    seen: u64,
    relief: f64,
}

/// The per-workload-class feedback controller. Owned by PAM when
/// [`crate::PruningConfig::adaptive`] is set; fed one terminal outcome at
/// a time via [`AdaptiveController::observe`] and the detector toggle via
/// [`AdaptiveController::set_pressure`], queried per task type for the
/// current effective thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    base_drop: f64,
    base_defer: f64,
    /// Per-phase trim on the dropping threshold (index 0 = calm, 1 =
    /// storm): the gain-scheduled perturb-and-observe state. Deferral is
    /// derived from the same shift via the sweep-ray geometry.
    trims: [f64; 2],
    /// Per-phase perturbation direction: +1.0 (more aggressive) or -1.0.
    dirs: [f64; 2],
    /// Per-phase perturbation magnitude: starts at [`AdaptiveConfig::step`]
    /// and halves on every reversal after the first (floor `step / 4`), so
    /// the climb converges onto an off-grid optimum instead of oscillating
    /// around it with full-size probes. The first reversal is free: the
    /// initial probe direction is a guess, and correcting a wrong guess
    /// must happen at full speed.
    steps: [f64; 2],
    /// Per-phase count of direction reversals (drives the step decay).
    reversals: [u64; 2],
    /// Per-phase on-time rate of that phase's previous window (the
    /// objective being climbed).
    last_rates: [f64; 2],
    /// Per-phase windows processed (the first window of a phase has no
    /// reference rate and probes the phase's natural direction).
    phase_windows: [u64; 2],
    window: WindowCounts,
    classes: Vec<ClassState>,
    /// Windows processed so far (instrumentation + state fingerprint).
    adjustments: u64,
    /// Feed-forward state: true while the Eq. 8 detector is engaged.
    pressure: bool,
    /// Slow EWMA of the detector level as a fraction of its toggle-on
    /// point (see [`SLOW_LAMBDA`]).
    slow_ratio: f64,
    /// True while the slow level average certifies sustained health —
    /// the only state in which [`AdaptiveConfig::calm_relax`] applies.
    deep_calm: bool,
}

impl AdaptiveController {
    /// Creates a controller for `num_task_types` workload classes around
    /// the static base thresholds it modulates.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    #[must_use]
    pub fn new(
        config: AdaptiveConfig,
        num_task_types: usize,
        base_drop: f64,
        base_defer: f64,
    ) -> Self {
        config.validate();
        Self {
            config,
            base_drop,
            base_defer,
            trims: [0.0; 2],
            // Calm probes toward admitting more (under-load wastes
            // capacity on deferral); storm probes toward shedding more
            // (the Fig. 7 direction) on top of the boost.
            dirs: [-1.0, 1.0],
            steps: [config.step; 2],
            reversals: [0; 2],
            last_rates: [0.0; 2],
            phase_windows: [0; 2],
            window: WindowCounts::default(),
            classes: vec![ClassState::default(); num_task_types],
            adjustments: 0,
            pressure: false,
            slow_ratio: 0.0,
            deep_calm: true,
        }
    }

    /// The controller configuration.
    #[must_use]
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Feed-forward input: the Eq. 8 oversubscription detector's toggle
    /// and its raw level as a fraction of the toggle-on point, fed once
    /// per mapping event *before* any threshold query. The toggle drives
    /// the storm schedule directly (outcome windows lag a flood; the
    /// detector does not); the level ratio feeds a slow average whose
    /// hysteresis gates the deep-calm relaxation. Returns `true` when
    /// either state flipped (thresholds jumped — cached score bounds are
    /// stale).
    pub fn set_pressure(&mut self, engaged: bool, level_ratio: f64) -> bool {
        let was = (self.pressure, self.deep_calm);
        self.pressure = engaged;
        self.slow_ratio = level_ratio * SLOW_LAMBDA + self.slow_ratio * (1.0 - SLOW_LAMBDA);
        if engaged || self.slow_ratio >= DEEP_CALM_EXIT {
            self.deep_calm = false;
        } else if self.slow_ratio <= DEEP_CALM_ENTER {
            self.deep_calm = true;
        }
        // Between the bounds: hold the previous state.
        (self.pressure, self.deep_calm) != was
    }

    /// The active phase index (0 = calm, 1 = storm).
    fn phase(&self) -> usize {
        usize::from(self.pressure)
    }

    /// Net dropping-threshold shift for the active phase: its learned
    /// trim, plus the feed-forward schedule — boost while the detector is
    /// engaged, relaxation while the system is in sustained deep calm,
    /// nothing in the transitional band between.
    fn drop_shift(&self) -> f64 {
        let feed_forward = if self.pressure {
            self.config.pressure_boost
        } else if self.deep_calm {
            -self.config.calm_relax
        } else {
            0.0
        };
        self.trims[self.phase()] + feed_forward
    }

    /// Current effective dropping threshold for a class.
    #[must_use]
    pub fn drop_threshold_for(&self, tt: TaskTypeId) -> f64 {
        let relief = self.classes.get(tt.index()).map_or(0.0, |c| c.relief);
        (self.base_drop + self.drop_shift() - relief)
            .clamp(self.config.drop_min, self.config.drop_max)
    }

    /// Current effective deferring threshold for a class (follows the
    /// dropping shift along the sweep-ray geometry).
    #[must_use]
    pub fn defer_threshold_for(&self, tt: TaskTypeId) -> f64 {
        let relief = self.classes.get(tt.index()).map_or(0.0, |c| c.relief);
        let t = (self.base_defer + defer_shift(self.drop_shift()) - relief)
            .clamp(self.config.defer_min, self.config.defer_max);
        // The §V-B2 invariant (defer >= drop) must survive adaptation.
        t.max(self.drop_threshold_for(tt))
    }

    /// Number of window-boundary adjustments performed so far.
    #[must_use]
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// True while the slow-averaged detector level sits in sustained deep
    /// calm (the feed-forward relaxation is active).
    #[must_use]
    pub fn deep_calm(&self) -> bool {
        self.deep_calm
    }

    /// Feeds one terminal task outcome. Returns `true` when a window
    /// boundary was crossed and thresholds may have moved (the caller
    /// invalidates score-table bound caches keyed on thresholds).
    pub fn observe(&mut self, tt: TaskTypeId, outcome: TaskOutcome) -> bool {
        self.window.add(outcome);
        if let Some(c) = self.classes.get_mut(tt.index()) {
            c.seen += 1;
            if !matches!(outcome, TaskOutcome::CompletedOnTime | TaskOutcome::CompletedApprox) {
                c.failed += 1;
            }
        }
        if self.window.total() < self.config.window as u64 {
            return false;
        }
        self.adjust();
        true
    }

    /// One perturb-and-observe decision at a window boundary, charged to
    /// the phase the detector reports *now* (outcome windows lag their
    /// causes either way; the climb self-corrects).
    fn adjust(&mut self) {
        let total = self.window.total() as f64;
        let rate = self.window.on_time as f64 / total;
        let p = self.phase();

        // Keep climbing while this phase's objective improves (or holds);
        // reverse when it degrades, shrinking the probe so the walk
        // converges onto the optimum rather than orbiting it. A phase's
        // first window has no reference — it probes the phase's natural
        // direction.
        if self.phase_windows[p] > 0 && rate < self.last_rates[p] {
            self.dirs[p] = -self.dirs[p];
            if self.reversals[p] > 0 {
                self.steps[p] = (self.steps[p] * 0.5).max(self.config.step * 0.25);
            }
            self.reversals[p] += 1;
        }
        self.last_rates[p] = rate;
        self.phase_windows[p] += 1;
        // Deferral rides the same ray rather than hunting independently
        // (one noisy objective cannot steer two coupled knobs apart), so
        // only the dropping trim is walked; clamp it to where the ray
        // still moves the thresholds.
        self.trims[p] = (self.trims[p] + self.dirs[p] * self.steps[p])
            .clamp(self.config.drop_min - self.base_drop, self.config.drop_max - self.base_drop);

        // Per-class fairness relief: classes failing (missing *or* being
        // pruned) beyond the global failure rate get shielded; recovered
        // classes give the relief back. A class needs a minimum sample
        // count this window to move.
        let global_fail = 1.0 - rate;
        let min_samples = (self.config.window as u64 / 8).max(1);
        for c in &mut self.classes {
            if c.seen >= min_samples {
                let class_fail = c.failed as f64 / c.seen as f64;
                if class_fail > global_fail + RELIEF_MARGIN {
                    c.relief = (c.relief + self.config.relief_step).min(self.config.relief_max);
                } else {
                    c.relief = decay(c.relief, self.config.relief_step);
                }
            }
            c.failed = 0;
            c.seen = 0;
        }

        self.window = WindowCounts::default();
        self.adjustments += 1;
    }

    /// Serializes the dynamic state (per-phase trims/directions/last
    /// objectives, relief vector, in-progress window counters) for the
    /// PAM snapshot blob.
    #[must_use]
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128 + self.classes.len() * 24);
        for p in 0..2 {
            buf.extend_from_slice(&self.trims[p].to_bits().to_le_bytes());
            buf.extend_from_slice(&self.dirs[p].to_bits().to_le_bytes());
            buf.extend_from_slice(&self.steps[p].to_bits().to_le_bytes());
            buf.extend_from_slice(&self.reversals[p].to_le_bytes());
            buf.extend_from_slice(&self.last_rates[p].to_bits().to_le_bytes());
            buf.extend_from_slice(&self.phase_windows[p].to_le_bytes());
        }
        buf.extend_from_slice(&self.adjustments.to_le_bytes());
        for v in [
            self.window.on_time,
            self.window.late,
            self.window.expired_unstarted,
            self.window.expired_on_machine,
            self.window.pruned,
            self.window.shed,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&(self.classes.len() as u64).to_le_bytes());
        for c in &self.classes {
            buf.extend_from_slice(&c.failed.to_le_bytes());
            buf.extend_from_slice(&c.seen.to_le_bytes());
            buf.extend_from_slice(&c.relief.to_bits().to_le_bytes());
        }
        buf.push(u8::from(self.pressure));
        buf.extend_from_slice(&self.slow_ratio.to_bits().to_le_bytes());
        buf.push(u8::from(self.deep_calm));
        buf
    }

    /// Restores state captured by [`AdaptiveController::state_bytes`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed buffer (the blob never leaves the snapshot
    /// the engine already validated).
    pub fn restore_state(&mut self, bytes: &[u8]) {
        let mut pos = 0usize;
        let u64_at = |p: &mut usize| {
            let v = u64::from_le_bytes(bytes[*p..*p + 8].try_into().expect("8 bytes"));
            *p += 8;
            v
        };
        for p in 0..2 {
            self.trims[p] = f64::from_bits(u64_at(&mut pos));
            self.dirs[p] = f64::from_bits(u64_at(&mut pos));
            self.steps[p] = f64::from_bits(u64_at(&mut pos));
            self.reversals[p] = u64_at(&mut pos);
            self.last_rates[p] = f64::from_bits(u64_at(&mut pos));
            self.phase_windows[p] = u64_at(&mut pos);
        }
        self.adjustments = u64_at(&mut pos);
        self.window = WindowCounts {
            on_time: u64_at(&mut pos),
            late: u64_at(&mut pos),
            expired_unstarted: u64_at(&mut pos),
            expired_on_machine: u64_at(&mut pos),
            pruned: u64_at(&mut pos),
            shed: u64_at(&mut pos),
        };
        let n = usize::try_from(u64_at(&mut pos)).expect("class count");
        self.classes = (0..n)
            .map(|_| ClassState {
                failed: u64_at(&mut pos),
                seen: u64_at(&mut pos),
                relief: f64::from_bits(u64_at(&mut pos)),
            })
            .collect();
        self.pressure = bytes[pos] != 0;
        pos += 1;
        self.slow_ratio = f64::from_bits(u64_at(&mut pos));
        self.deep_calm = bytes[pos] != 0;
        pos += 1;
        assert_eq!(pos, bytes.len(), "corrupt adaptive controller state: trailing bytes");
    }
}

/// Moves `value` toward zero by `step` without overshooting.
fn decay(value: f64, step: f64) -> f64 {
    if value > step {
        value - step
    } else if value < -step {
        value + step
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(window: usize) -> AdaptiveController {
        let config = AdaptiveConfig { window, ..Default::default() };
        AdaptiveController::new(config, 3, 0.50, 0.90)
    }

    fn feed(c: &mut AdaptiveController, tt: u16, outcome: TaskOutcome, n: usize) {
        for _ in 0..n {
            c.observe(TaskTypeId(tt), outcome);
        }
    }

    #[test]
    fn starts_calm_relaxed_below_base() {
        // The detector starts disengaged, so the schedule opens at the
        // calm point: calm_relax below base along the sweep ray.
        let c = controller(8);
        let relax = c.config().calm_relax;
        assert!((c.drop_threshold_for(TaskTypeId(0)) - (0.50 - relax)).abs() < 1e-12);
        assert!((c.defer_threshold_for(TaskTypeId(0)) - (0.90 - relax)).abs() < 1e-12);
        assert_eq!(c.adjustments(), 0);
    }

    #[test]
    fn calm_probes_toward_admission_storm_toward_aggression() {
        let mut calm = controller(8);
        feed(&mut calm, 0, TaskOutcome::ExpiredExecuting, 8);
        assert_eq!(calm.adjustments(), 1);
        assert!(
            calm.drop_threshold_for(TaskTypeId(0)) < 0.50 - calm.config().calm_relax,
            "calm first probe admits more, not less"
        );
        let mut storm = controller(8);
        storm.set_pressure(true, 1.0);
        feed(&mut storm, 0, TaskOutcome::ExpiredExecuting, 8);
        assert!(
            storm.drop_threshold_for(TaskTypeId(0)) > 0.50 + storm.config().pressure_boost,
            "storm first probe sheds more, on top of the boost"
        );
        assert!(storm.defer_threshold_for(TaskTypeId(0)) > 0.90, "deferral rides the same ray");
    }

    #[test]
    fn improving_rate_keeps_the_direction() {
        let mut c = controller(8);
        feed(&mut c, 0, TaskOutcome::ExpiredExecuting, 8); // rate 0: calm probes down
        let after_one = c.drop_threshold_for(TaskTypeId(0));
        feed(&mut c, 0, TaskOutcome::CompletedOnTime, 8); // rate 1 > 0: keep going
        assert!(c.drop_threshold_for(TaskTypeId(0)) < after_one);
    }

    #[test]
    fn degrading_rate_reverses_the_direction() {
        let mut c = controller(8);
        feed(&mut c, 0, TaskOutcome::CompletedOnTime, 8); // rate 1, calm probes down
        let after_one = c.drop_threshold_for(TaskTypeId(0));
        feed(&mut c, 0, TaskOutcome::ExpiredExecuting, 8); // rate 0 < 1: reverse
        assert!(
            c.drop_threshold_for(TaskTypeId(0)) > after_one,
            "worse objective must reverse the perturbation"
        );
    }

    #[test]
    fn phase_flip_recalls_the_other_phases_trim() {
        let mut c = controller(8);
        // Calm descends for two windows (0 -> -step -> -2·step).
        feed(&mut c, 0, TaskOutcome::ExpiredExecuting, 8);
        feed(&mut c, 0, TaskOutcome::CompletedOnTime, 8);
        let calm_point = c.drop_threshold_for(TaskTypeId(0));
        assert!(calm_point < 0.50 - c.config().calm_relax);
        // Storm: jumps to base + boost instantly, untouched by the calm
        // descent.
        c.set_pressure(true, 1.0);
        assert!(
            (c.drop_threshold_for(TaskTypeId(0)) - (0.50 + c.config().pressure_boost)).abs()
                < 1e-12,
            "storm trim starts fresh at the boosted point"
        );
        // And flipping back recalls the calm trim exactly.
        c.set_pressure(false, 0.0);
        assert!((c.drop_threshold_for(TaskTypeId(0)) - calm_point).abs() < 1e-12);
    }

    #[test]
    fn dropping_more_is_not_rewarded_for_its_own_sake() {
        // A miss-rate-targeting law walks to max aggression because pruned
        // tasks cannot miss deadlines; the on-time objective must treat a
        // pruned-away window exactly like an expired one. Two controllers
        // fed the two failure shapes must walk identical trajectories.
        let mut pruned = controller(8);
        pruned.set_pressure(true, 1.0);
        let mut expired = controller(8);
        expired.set_pressure(true, 1.0);
        for _ in 0..4 {
            feed(&mut pruned, 0, TaskOutcome::PrunedDropped, 8);
            feed(&mut expired, 0, TaskOutcome::ExpiredExecuting, 8);
        }
        assert!(
            (pruned.drop_threshold_for(TaskTypeId(1)) - expired.drop_threshold_for(TaskTypeId(1)))
                .abs()
                < 1e-12,
            "an all-pruned window must not score better than an all-expired one"
        );
    }

    #[test]
    fn suffering_class_accumulates_relief() {
        let mut c = controller(16);
        c.set_pressure(true, 1.0); // keep the shared point off the lower clamp
                                   // Class 0 fails everything; classes 1/2 are fine → class 0's
                                   // failure rate (100 %) overshoots the global rate (25 %).
        for _ in 0..4 {
            feed(&mut c, 0, TaskOutcome::ExpiredUnstarted, 4);
            feed(&mut c, 1, TaskOutcome::CompletedOnTime, 6);
            feed(&mut c, 2, TaskOutcome::CompletedOnTime, 6);
        }
        let relieved = c.drop_threshold_for(TaskTypeId(0));
        let normal = c.drop_threshold_for(TaskTypeId(1));
        assert!(
            relieved < normal,
            "suffering class gets relaxed thresholds: {relieved} vs {normal}"
        );
        assert!(c.defer_threshold_for(TaskTypeId(0)) < c.defer_threshold_for(TaskTypeId(1)));
    }

    #[test]
    fn pruned_away_class_counts_as_suffering() {
        // Fairness must see pruning: a class whose tasks are dropped by
        // the pruner is being sacrificed even though it never "misses".
        let mut c = controller(16);
        c.set_pressure(true, 1.0);
        for _ in 0..4 {
            feed(&mut c, 0, TaskOutcome::PrunedDropped, 4);
            feed(&mut c, 1, TaskOutcome::CompletedOnTime, 6);
            feed(&mut c, 2, TaskOutcome::CompletedOnTime, 6);
        }
        assert!(
            c.drop_threshold_for(TaskTypeId(0)) < c.drop_threshold_for(TaskTypeId(1)),
            "a pruned-away class accumulates relief"
        );
    }

    #[test]
    fn relief_is_capped_and_decays() {
        let mut c = controller(16);
        c.set_pressure(true, 1.0);
        for _ in 0..20 {
            feed(&mut c, 0, TaskOutcome::ExpiredUnstarted, 4);
            feed(&mut c, 1, TaskOutcome::CompletedOnTime, 12);
        }
        let floor = c.drop_threshold_for(TaskTypeId(0));
        assert!(floor >= c.config().drop_min - 1e-12);
        // Class 0 recovers: relief drains away again.
        for _ in 0..20 {
            feed(&mut c, 0, TaskOutcome::CompletedOnTime, 4);
            feed(&mut c, 1, TaskOutcome::CompletedOnTime, 12);
        }
        assert!(c.drop_threshold_for(TaskTypeId(0)) >= floor);
        assert!(
            (c.drop_threshold_for(TaskTypeId(0)) - c.drop_threshold_for(TaskTypeId(1))).abs()
                < 1e-12,
            "recovered class returns to the shared thresholds"
        );
    }

    #[test]
    fn thresholds_stay_inside_clamps_and_ordered() {
        let mut c = controller(4);
        c.set_pressure(true, 1.0);
        // Hammer it with pathological windows in both directions.
        for _ in 0..50 {
            feed(&mut c, 0, TaskOutcome::ExpiredExecuting, 4);
        }
        for tt in 0..3u16 {
            let drop = c.drop_threshold_for(TaskTypeId(tt));
            let defer = c.defer_threshold_for(TaskTypeId(tt));
            assert!((c.config().drop_min..=c.config().drop_max).contains(&drop));
            assert!(
                (c.config().defer_min..=c.config().defer_max).contains(&defer) || defer == drop
            );
            assert!(defer >= drop, "§V-B2 invariant must survive adaptation");
        }
        for _ in 0..50 {
            feed(&mut c, 0, TaskOutcome::ExpiredUnstarted, 4);
        }
        for tt in 0..3u16 {
            assert!(c.defer_threshold_for(TaskTypeId(tt)) >= c.drop_threshold_for(TaskTypeId(tt)));
        }
    }

    #[test]
    fn pressure_boost_is_immediate_and_reversible() {
        // Non-neutral feed-forward schedule: +0.20 while engaged, −0.10
        // while calm (the defaults are neutral; the mechanism is not).
        let config = AdaptiveConfig {
            window: 8,
            pressure_boost: 0.20,
            calm_relax: 0.10,
            ..Default::default()
        };
        let mut c = AdaptiveController::new(config, 3, 0.50, 0.90);
        assert!(!c.set_pressure(false, 0.0), "no flip: nothing changed");
        assert!(c.set_pressure(true, 1.0), "engage flips");
        let boosted = c.drop_threshold_for(TaskTypeId(0));
        assert!(
            (boosted - (0.50 + 0.20)).abs() < 1e-12,
            "boost applies with zero windowed outcomes: {boosted}"
        );
        assert!(c.defer_threshold_for(TaskTypeId(0)) > 0.90);
        assert!(!c.set_pressure(true, 1.0), "steady state: no flip");
        assert!(c.set_pressure(false, 0.0), "disengage flips");
        assert!((c.drop_threshold_for(TaskTypeId(0)) - (0.50 - 0.10)).abs() < 1e-12);
        assert!((c.defer_threshold_for(TaskTypeId(0)) - (0.90 - 0.10)).abs() < 1e-12);
    }

    #[test]
    fn relax_requires_sustained_deep_calm() {
        let mut c = controller(8);
        let relax = c.config().calm_relax;
        // Fresh controller: deep calm, relaxed below base.
        assert!((c.drop_threshold_for(TaskTypeId(0)) - (0.50 - relax)).abs() < 1e-12);
        // Detector level climbs (toggle still off — a gradual ramp):
        // the slow average crosses the exit bound and the relaxation is
        // withdrawn even though pressure never engaged.
        for _ in 0..8 {
            c.set_pressure(false, 1.0);
        }
        assert!(
            (c.drop_threshold_for(TaskTypeId(0)) - 0.50).abs() < 1e-12,
            "transitional band holds base"
        );
        // One quiet event is not enough to relax again…
        c.set_pressure(false, 0.0);
        assert!((c.drop_threshold_for(TaskTypeId(0)) - 0.50).abs() < 1e-12);
        // …but sustained quiet is.
        for _ in 0..20 {
            c.set_pressure(false, 0.0);
        }
        assert!((c.drop_threshold_for(TaskTypeId(0)) - (0.50 - relax)).abs() < 1e-12);
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let mut c = controller(8);
        feed(&mut c, 0, TaskOutcome::ExpiredUnstarted, 5);
        feed(&mut c, 1, TaskOutcome::CompletedOnTime, 6);
        feed(&mut c, 2, TaskOutcome::PrunedDropped, 3);
        c.set_pressure(true, 1.0);
        // Mid-window on purpose: partial counters must survive too.
        let bytes = c.state_bytes();
        let mut restored = controller(8);
        restored.restore_state(&bytes);
        assert_eq!(c, restored);
        // And the trajectories stay identical afterwards.
        feed(&mut c, 0, TaskOutcome::ExpiredExecuting, 10);
        feed(&mut restored, 0, TaskOutcome::ExpiredExecuting, 10);
        assert_eq!(c, restored);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        AdaptiveConfig { window: 0, ..Default::default() }.validate();
    }
}
