//! The pruning mechanism: configuration, the Eq. 8 oversubscription
//! detector with its Schmitt trigger, the Eq. 7 per-task drop-threshold
//! adjustment, and the dropping pass over machine queues.

use crate::adaptive::AdaptiveConfig;
use crate::scorer::ProbScorer;
use hcsim_model::{MachineId, TaskTypeId};
use hcsim_parallel::FanoutBackend;
use hcsim_sim::MapContext;
use serde::{Deserialize, Serialize};

/// All knobs of the pruning mechanism (§V), with the values the paper
/// settles on as defaults.
///
/// The struct is `Copy` and uses functional update syntax for overrides;
/// [`PruningConfig::validate`] (called by every mapper constructor)
/// rejects inconsistent threshold pairs:
///
/// ```
/// use hcsim_core::{Pam, PruningConfig};
///
/// let cfg = PruningConfig {
///     drop_threshold: 0.30,  // drop a task only below 30% on-time odds
///     defer_threshold: 0.70, // defer mapping below 70% odds
///     threads: 4,            // per-machine fan-out (bit-identical at any count)
///     ..PruningConfig::default()
/// };
/// cfg.validate();
/// let _mapper = Pam::new(cfg);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// Base dropping threshold (§VII-C settles on 50 %).
    pub drop_threshold: f64,
    /// Deferring threshold (§VII-C settles on 90 %; must be ≥ the dropping
    /// threshold for the mechanism to make sense, §V-B2).
    pub defer_threshold: f64,
    /// Eq. 7 scale ρ for the skewness/position adjustment. The paper
    /// introduces ρ without publishing a value; 0.1 keeps the adjustment
    /// within ±10 percentage points at the queue head.
    pub rho: f64,
    /// Eq. 8 EWMA weight λ (§VII-B selects 0.9).
    pub lambda: f64,
    /// Oversubscription level at which dropping engages (§VII-A: "the
    /// dropping toggle is one task").
    pub toggle_on: f64,
    /// Use a Schmitt trigger with 20 % separation (§V-C) instead of a
    /// single threshold.
    pub schmitt: bool,
    /// Apply the Eq. 7 per-task adjustment (disable to ablate).
    pub per_task_adjustment: bool,
    /// Allow the dropping pass to evict the executing task (scenario C).
    pub drop_executing: bool,
    /// Impulse budget for intermediate availability PMFs.
    pub impulse_budget: usize,
    /// Maximum number of batch tasks evaluated per mapping event by the
    /// probabilistic heuristics (an engineering bound; the paper does not
    /// cap it, but under extreme oversubscription the batch grows into the
    /// hundreds and scoring is O(window × machines)).
    pub batch_window: usize,
    /// Fairness factor ϑ for PAMF (§VII-D selects 5 %). Only consulted by
    /// [`crate::Pam::with_fairness`] / the PAMF factory entry.
    pub fairness_factor: f64,
    /// §VIII future-work extension: allow PAM to *preempt* an executing
    /// task in favor of an urgent batch task when (a) the urgent task
    /// meets the defer threshold only if started immediately and (b) the
    /// incumbent still meets the defer threshold after resuming behind it
    /// (judged by its residual execution PMF). Off by default — the
    /// paper's published mechanism does not preempt.
    pub preemption: bool,
    /// Worker threads for the per-machine scoring fan-out (`0` = auto:
    /// defer to [`hcsim_sim::SimConfig::threads`], which itself defaults
    /// to the host's available parallelism). The fan-out merges in
    /// machine-index order and every per-machine computation is
    /// deterministic, so results are **bit-identical at any thread
    /// count** — this is purely a performance knob.
    pub threads: usize,
    /// Fan-out engine for the per-machine scoring work
    /// ([`FanoutBackend::Auto`] = defer to [`hcsim_sim::SimConfig`]'s
    /// knob, bottoming out at the persistent worker pool). Like
    /// `threads`, a pure performance knob: scoped and pooled execution
    /// produce byte-identical reports.
    pub backend: FanoutBackend,
    /// Reuse the score table across mapping events fired at the same
    /// simulated instant (burst arrivals): only version-changed machines
    /// are rescored and the window diff is applied incrementally, instead
    /// of rebuilding from scratch per event. Decision-identical by
    /// construction (see [`crate::scorer::ScoreTable::ensure`]) — another
    /// pure performance knob, on by default.
    pub table_reuse: bool,
    /// Close the threshold loop online: when set, PAM drives its dropping
    /// and deferring thresholds through an
    /// [`AdaptiveController`](crate::AdaptiveController) observing a
    /// sliding window of terminal outcomes, with `drop_threshold` /
    /// `defer_threshold` as the bases it modulates. The controller's
    /// per-class thresholds subsume the sufferage fairness knob, so PAMF's
    /// static table is bypassed while adaptation is on. `None` (the
    /// default, preserving the published model and the seed goldens) keeps
    /// the thresholds static. MOC's cull threshold is a candidate-filter
    /// bound, not an outcome threshold, and stays static either way.
    pub adaptive: Option<AdaptiveConfig>,
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self {
            drop_threshold: 0.50,
            defer_threshold: 0.90,
            rho: 0.1,
            lambda: 0.9,
            toggle_on: 1.0,
            schmitt: true,
            per_task_adjustment: true,
            drop_executing: true,
            impulse_budget: 24,
            batch_window: 192,
            fairness_factor: 0.05,
            preemption: false,
            threads: 0,
            backend: FanoutBackend::Auto,
            table_reuse: true,
            adaptive: None,
        }
    }
}

impl PruningConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on thresholds outside `[0, 1]`, λ outside `(0, 1]`, or a
    /// defer threshold below the drop threshold.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.drop_threshold), "drop threshold in [0,1]");
        assert!((0.0..=1.0).contains(&self.defer_threshold), "defer threshold in [0,1]");
        assert!(
            self.defer_threshold >= self.drop_threshold,
            "defer threshold must be >= drop threshold (§V-B2)"
        );
        assert!(self.lambda > 0.0 && self.lambda <= 1.0, "lambda in (0,1]");
        assert!(self.rho >= 0.0 && self.rho.is_finite(), "rho must be non-negative");
        assert!(self.toggle_on > 0.0, "toggle must be positive");
        assert!(self.impulse_budget >= 2, "impulse budget too small");
        assert!(self.batch_window >= 1, "batch window must be positive");
        assert!((0.0..=1.0).contains(&self.fairness_factor), "fairness factor in [0,1]");
        if let Some(a) = &self.adaptive {
            a.validate();
        }
    }
}

/// Eq. 7: the adjustment `φ = (−s·ρ)/(κ+1)` added to the base dropping
/// threshold for a task with bounded completion-PMF skewness `s` at queue
/// position `κ` (0 = executing/head). The result is clamped to `[0, 1]`.
///
/// Positively skewed tasks (likely to finish early) get a *lower*
/// threshold — they are protected; negatively skewed tasks near the head
/// get a *higher* threshold — they are dropped more eagerly, because their
/// uncertainty poisons everything queued behind them (§V-B1).
#[must_use]
pub fn adjusted_drop_threshold(base: f64, skewness: f64, position: usize, rho: f64) -> f64 {
    let phi = (-skewness * rho) / (position as f64 + 1.0);
    (base + phi).clamp(0.0, 1.0)
}

/// Eq. 8 oversubscription detector with optional Schmitt trigger (§V-C).
///
/// `d_τ = µ_τ·λ + d_{τ−1}·(1−λ)` where µ_τ is the number of deadline
/// misses since the previous mapping event. Dropping engages when the
/// level reaches `toggle_on`; with the Schmitt trigger it only disengages
/// once the level falls to `0.8·toggle_on` (20 % separation), preventing
/// rapid on/off flapping around the threshold.
///
/// ```
/// use hcsim_core::{OversubscriptionDetector, PruningConfig};
///
/// let mut d = OversubscriptionDetector::new(&PruningConfig::default());
/// assert!(!d.dropping_engaged());
/// d.observe(3); // a burst of deadline misses
/// assert!(d.dropping_engaged());
/// d.observe(0); // one quiet event is not enough to disengage (λ = 0.9)
/// assert!(!d.dropping_engaged() || d.level() > 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OversubscriptionDetector {
    level: f64,
    engaged: bool,
    lambda: f64,
    toggle_on: f64,
    schmitt: bool,
}

impl OversubscriptionDetector {
    /// Creates a detector from the pruning configuration.
    #[must_use]
    pub fn new(config: &PruningConfig) -> Self {
        Self {
            level: 0.0,
            engaged: false,
            lambda: config.lambda,
            toggle_on: config.toggle_on,
            schmitt: config.schmitt,
        }
    }

    /// Feeds the misses observed since the last mapping event (µ_τ) and
    /// updates the dropping toggle.
    pub fn observe(&mut self, missed: usize) {
        self.level = missed as f64 * self.lambda + self.level * (1.0 - self.lambda);
        if self.schmitt {
            if self.level >= self.toggle_on {
                self.engaged = true;
            } else if self.level <= 0.8 * self.toggle_on {
                self.engaged = false;
            }
            // Between the two bounds: hold the previous state.
        } else {
            self.engaged = self.level >= self.toggle_on;
        }
    }

    /// Current smoothed oversubscription level d_τ.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// True while the pruner should operate in aggressive (dropping) mode.
    #[must_use]
    pub fn dropping_engaged(&self) -> bool {
        self.engaged
    }

    /// Overwrites the smoothed level and toggle state with values captured
    /// from a snapshot. The λ/toggle parameters stay as configured — only
    /// the dynamic state is restored.
    pub fn restore(&mut self, level: f64, engaged: bool) {
        self.level = level;
        self.engaged = engaged;
    }
}

/// The dropping stage of the pruner (§V-A): walk each machine queue from
/// the head, drop every task whose robustness is at or below its adjusted
/// threshold, and re-evaluate the queue after each drop (removing a task
/// raises the robustness of everything behind it).
#[derive(Debug, Clone, Copy)]
pub struct Pruner {
    config: PruningConfig,
}

impl Pruner {
    /// Creates a pruner.
    #[must_use]
    pub fn new(config: PruningConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// Runs the dropping pass over all machine queues. `threshold_for`
    /// supplies the (possibly fairness-relaxed) base dropping threshold per
    /// task type. Returns the number of tasks removed.
    ///
    /// Queue scores come from the scorer's incremental tail cache
    /// ([`ProbScorer::slot_scores`]), so the re-evaluation after each drop
    /// reconvolves only the queue suffix behind the removed task instead of
    /// rebuilding the whole chain.
    pub fn drop_pass(
        &self,
        ctx: &mut MapContext<'_>,
        scorer: &mut ProbScorer,
        threshold_for: &dyn Fn(TaskTypeId) -> f64,
    ) -> usize {
        let mut dropped = 0;
        // Anchor the cache to this event's clock (a no-op when the mapper
        // already began the event; required when the pruner is driven
        // standalone, as the behavioral tests do). Same for the
        // membership epoch: churn re-gates the pool on the live cluster.
        scorer.begin_event(ctx.now());
        scorer.sync_membership(ctx.membership_epoch(), ctx.machines());
        // Fan the expensive per-machine chain/statistics computation out
        // across cores before the sequential decision walk below: the
        // first `slot_scores` query per machine then hits a warm cache,
        // and only machines that actually drop pay for re-analysis. The
        // warm-up is bit-identical to lazy sequential evaluation. On the
        // pool backend this is one request/response round over the
        // persistent workers; the per-machine queries in the walk below
        // are direct cell accesses either way.
        scorer.set_parallelism(
            crate::effective_threads(self.config.threads, ctx),
            crate::effective_backend(self.config.backend, ctx),
        );
        scorer.warm_caches(ctx.machines(), true);
        let may_evict = self.config.drop_executing && scorer.policy() == hcsim_pmf::DropPolicy::All;
        for m in 0..ctx.num_machines() {
            let machine_id = MachineId::from(m);
            // Re-evaluate after every drop; bounded by queue capacity.
            loop {
                let machine = ctx.machine(machine_id);
                if machine.occupancy() == 0 {
                    break;
                }
                let slots = scorer.slot_scores(machine);
                let mut removal: Option<(hcsim_model::TaskId, bool)> = None;
                for slot in slots {
                    let base = threshold_for(slot.task.type_id);
                    let threshold = if self.config.per_task_adjustment {
                        adjusted_drop_threshold(base, slot.skewness, slot.position, self.config.rho)
                    } else {
                        base
                    };
                    if slot.robustness <= threshold {
                        let is_executing = slot.position == 0
                            && ctx
                                .machine(machine_id)
                                .executing()
                                .is_some_and(|e| e.task.id == slot.task.id);
                        if is_executing && !may_evict {
                            continue; // protected; inspect the rest
                        }
                        removal = Some((slot.task.id, is_executing));
                        break; // queue changes: re-evaluate this machine
                    }
                }
                match removal {
                    Some((task_id, true)) => {
                        ctx.evict_executing(machine_id);
                        debug_assert!(
                            ctx.machine(machine_id).executing().is_none(),
                            "evicted task {task_id} still executing"
                        );
                        dropped += 1;
                    }
                    Some((task_id, false)) => {
                        if ctx.drop_pending(machine_id, task_id) {
                            dropped += 1;
                        } else {
                            break; // defensive: task vanished; stop looping
                        }
                    }
                    None => break,
                }
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_match_paper() {
        let c = PruningConfig::default();
        c.validate();
        assert!((c.drop_threshold - 0.5).abs() < 1e-12);
        assert!((c.defer_threshold - 0.9).abs() < 1e-12);
        assert!((c.lambda - 0.9).abs() < 1e-12);
        assert!((c.toggle_on - 1.0).abs() < 1e-12);
        assert!(c.schmitt);
        assert!(c.adaptive.is_none(), "threshold adaptation is opt-in");
    }

    #[test]
    #[should_panic(expected = "defer threshold must be >=")]
    fn defer_below_drop_rejected() {
        PruningConfig { drop_threshold: 0.8, defer_threshold: 0.5, ..Default::default() }
            .validate();
    }

    #[test]
    fn eq7_signs_and_magnitude() {
        // Negative skew at the head: threshold raised by ρ·|s|.
        let up = adjusted_drop_threshold(0.5, -1.0, 0, 0.1);
        assert!((up - 0.6).abs() < 1e-12);
        // Positive skew at the head: threshold lowered.
        let down = adjusted_drop_threshold(0.5, 1.0, 0, 0.1);
        assert!((down - 0.4).abs() < 1e-12);
        // Deeper in the queue the adjustment attenuates as 1/(κ+1).
        let deep = adjusted_drop_threshold(0.5, -1.0, 4, 0.1);
        assert!((deep - 0.52).abs() < 1e-12);
        // Zero skew: no change.
        assert_eq!(adjusted_drop_threshold(0.5, 0.0, 2, 0.1), 0.5);
    }

    #[test]
    fn eq7_clamps() {
        assert_eq!(adjusted_drop_threshold(0.05, 1.0, 0, 0.2), 0.0);
        assert_eq!(adjusted_drop_threshold(0.95, -1.0, 0, 0.2), 1.0);
    }

    #[test]
    fn detector_ewma_matches_eq8() {
        let cfg = PruningConfig { lambda: 0.9, schmitt: false, ..Default::default() };
        let mut d = OversubscriptionDetector::new(&cfg);
        d.observe(2); // 2*0.9 = 1.8
        assert!((d.level() - 1.8).abs() < 1e-12);
        d.observe(0); // 1.8*0.1 = 0.18
        assert!((d.level() - 0.18).abs() < 1e-12);
        d.observe(1); // 1*0.9 + 0.18*0.1 = 0.918
        assert!((d.level() - 0.918).abs() < 1e-12);
    }

    #[test]
    fn single_threshold_toggles_both_ways() {
        let cfg = PruningConfig { lambda: 1.0, schmitt: false, ..Default::default() };
        let mut d = OversubscriptionDetector::new(&cfg);
        assert!(!d.dropping_engaged());
        d.observe(3);
        assert!(d.dropping_engaged());
        d.observe(0);
        assert!(!d.dropping_engaged(), "single threshold flaps straight off");
    }

    #[test]
    fn schmitt_trigger_holds_between_bounds() {
        // λ=1 makes the level equal to the last observation. on = 1.0,
        // off = 0.8; exactly at the on-threshold engages.
        let cfg = PruningConfig { lambda: 1.0, schmitt: true, ..Default::default() };
        let mut d = OversubscriptionDetector::new(&cfg);
        d.observe(1); // level 1.0 → on
        assert!(d.dropping_engaged());
        // Emulate a fractional level inside the window with λ=0.45.
        let cfg2 = PruningConfig { lambda: 0.45, schmitt: true, ..Default::default() };
        let mut d2 = OversubscriptionDetector::new(&cfg2);
        d2.observe(3); // 1.35 → on
        assert!(d2.dropping_engaged());
        d2.observe(1); // 0.45 + 1.35·0.55 ≈ 1.19 → stays on
        assert!(d2.dropping_engaged());
        d2.observe(0); // ≈0.66 < 0.8 → off
        assert!(!d2.dropping_engaged());
    }

    #[test]
    fn schmitt_hysteresis_window() {
        // Construct a sequence landing the level inside (0.8, 1.0) from
        // both directions and verify the state is direction-dependent.
        let cfg = PruningConfig { lambda: 0.5, schmitt: true, ..Default::default() };
        // Rising from below: level hits 0.9 without ever reaching 1.0.
        let mut rising = OversubscriptionDetector::new(&cfg);
        rising.observe(1); // 0.5
        rising.observe(1); // 0.75
        rising.observe(1); // 0.875 — inside window, never engaged
        assert!(!rising.dropping_engaged());
        // Falling from above: engage at 1.75, then decay into the window.
        let mut falling = OversubscriptionDetector::new(&cfg);
        falling.observe(3); // 1.5 → on
        falling.observe(0); // 0.75 → below 0.8 → off... decays too fast; use λ=0.2
        let cfg2 = PruningConfig { lambda: 0.2, schmitt: true, ..Default::default() };
        let mut falling = OversubscriptionDetector::new(&cfg2);
        falling.observe(6); // 1.2 → on
        assert!(falling.dropping_engaged());
        falling.observe(0); // 0.96 — inside window → holds on
        assert!(falling.dropping_engaged());
        falling.observe(0); // 0.768 → off
        assert!(!falling.dropping_engaged());
    }
}
