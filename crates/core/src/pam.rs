//! PAM — the Pruning-Aware Mapper (§V-D1) — and its fairness-aware
//! extension PAMF (§V-D2).
//!
//! At every mapping event PAM:
//!
//! 1. feeds the deadline misses since the last event into the Eq. 8
//!    oversubscription detector;
//! 2. when the detector's dropping toggle is engaged, runs the pruner's
//!    dropping pass over all machine queues (head first, per-task adjusted
//!    thresholds, re-analysis after every drop);
//! 3. phase 1: for each unmapped task, finds the machine offering the
//!    highest robustness; tasks whose best robustness falls below the
//!    *deferring* threshold are deferred — left in the batch queue for a
//!    future event in the hope of a better match (§V-A);
//! 4. phase 2: among surviving (task, machine) pairs, commits the pair
//!    with the lowest expected completion time, breaking ties by shortest
//!    expected execution time; repeats until queues fill or candidates run
//!    out.
//!
//! PAMF additionally maintains a [`SufferageTable`]: task types that keep
//! missing deadlines accumulate sufferage, which *relaxes* (lowers) both
//! pruning thresholds for that type, shielding it from starvation at a
//! small cost in overall robustness (Fig. 6).

use crate::adaptive::AdaptiveController;
use crate::fairness::SufferageTable;
use crate::pruner::{OversubscriptionDetector, Pruner, PruningConfig};
use crate::scorer::{PairScore, ProbScorer, ScoreTable};
use hcsim_model::{MachineId, Task, TaskId, TaskOutcome, TaskTypeId};
use hcsim_pmf::{queue_step, Pmf};
use hcsim_sim::{MapContext, Mapper, MapperInstrumentation};

/// The pruning-aware mapper (PAM), optionally with PAMF fairness.
#[derive(Debug)]
pub struct Pam {
    config: PruningConfig,
    detector: OversubscriptionDetector,
    pruner: Pruner,
    scorer: Option<ProbScorer>,
    /// Reused (window × machine) score matrix; rebuilt per event, updated
    /// incrementally between assignments.
    table: ScoreTable,
    sufferage: Option<SufferageTable>,
    /// Online threshold controller ([`PruningConfig::adaptive`]); its
    /// per-class thresholds replace both the static thresholds and the
    /// sufferage relaxation while present.
    adaptive: Option<AdaptiveController>,
    name: &'static str,
    instr: MapperInstrumentation,
}

impl Pam {
    /// Plain PAM.
    #[must_use]
    pub fn new(config: PruningConfig) -> Self {
        config.validate();
        Self {
            config,
            detector: OversubscriptionDetector::new(&config),
            pruner: Pruner::new(config),
            scorer: None,
            table: ScoreTable::new(),
            sufferage: None,
            adaptive: None,
            name: "PAM",
            instr: MapperInstrumentation::default(),
        }
    }

    /// PAMF: PAM with per-type sufferage using `config.fairness_factor`.
    /// The table is sized lazily at the first mapping event.
    #[must_use]
    pub fn with_fairness(config: PruningConfig) -> Self {
        let mut pam = Self::new(config);
        pam.name = "PAMF";
        pam
    }

    /// The pruning configuration.
    #[must_use]
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// Current oversubscription level d_τ (for instrumentation).
    #[must_use]
    pub fn oversubscription_level(&self) -> f64 {
        self.detector.level()
    }

    /// True while the dropping toggle is engaged.
    #[must_use]
    pub fn dropping_engaged(&self) -> bool {
        self.detector.dropping_engaged()
    }

    fn is_fair(&self) -> bool {
        self.name == "PAMF"
    }

    /// The adaptive controller, when threshold adaptation is on.
    #[must_use]
    pub fn adaptive(&self) -> Option<&AdaptiveController> {
        self.adaptive.as_ref()
    }

    fn defer_threshold_for(&self, tt: TaskTypeId) -> f64 {
        if let Some(a) = &self.adaptive {
            return a.defer_threshold_for(tt);
        }
        match &self.sufferage {
            Some(s) => s.relax(tt, self.config.defer_threshold),
            None => self.config.defer_threshold,
        }
    }
}

impl Mapper for Pam {
    fn name(&self) -> &str {
        self.name
    }

    fn on_mapping_event(&mut self, ctx: &mut MapContext<'_>) {
        // Lazy one-time initialization against the system spec. The
        // sufferage table is guarded separately: `restore_state` may have
        // re-seated it before the first event, and it must not be reset.
        if self.scorer.is_none() {
            self.scorer = Some(ProbScorer::for_spec(
                ctx.spec(),
                ctx.drop_policy(),
                self.config.impulse_budget,
            ));
        }
        if let Some(acfg) = self.config.adaptive {
            // Adaptation subsumes the sufferage knob: per-class relief
            // plays its role, so the static table is never built.
            if self.adaptive.is_none() {
                self.adaptive = Some(AdaptiveController::new(
                    acfg,
                    ctx.spec().num_task_types(),
                    self.config.drop_threshold,
                    self.config.defer_threshold,
                ));
            }
        } else if self.is_fair() && self.sufferage.is_none() {
            self.sufferage =
                Some(SufferageTable::new(ctx.spec().num_task_types(), self.config.fairness_factor));
        }
        let mut scorer = self.scorer.take().expect("initialized above");
        scorer.begin_event(ctx.now());
        // Track cluster churn: a membership change re-gates the pool on
        // the live machine count and releases the chains of departed
        // machines (one compare per event while nothing changes).
        scorer.sync_membership(ctx.membership_epoch(), ctx.machines());
        // Resolve the fan-out engine once per event: at cluster scale the
        // persistent worker pool serves both the pruner warm-up and the
        // score-table rounds below.
        scorer.set_parallelism(
            crate::effective_threads(self.config.threads, ctx),
            crate::effective_backend(self.config.backend, ctx),
        );

        // Aggression control (§V-C).
        let was_engaged = self.detector.dropping_engaged();
        self.detector.observe(ctx.missed_since_last());
        self.instr.mapping_events += 1;
        if self.detector.dropping_engaged() != was_engaged {
            self.instr.toggle_transitions += 1;
        }
        // Feed-forward: the detector leads the outcome window by the width
        // of a task lifetime, so the controller learns about a storm here,
        // not when its casualties finish. A flip moves both thresholds at
        // once — cached score bounds are stale.
        if let Some(a) = &mut self.adaptive {
            let ratio = self.detector.level() / self.config.toggle_on.max(f64::MIN_POSITIVE);
            if a.set_pressure(self.detector.dropping_engaged(), ratio) {
                self.table.invalidate();
            }
            if a.deep_calm() {
                self.instr.events_deep_calm += 1;
            }
        }
        if self.detector.dropping_engaged() {
            self.instr.events_dropping_engaged += 1;
            let adaptive = &self.adaptive;
            let sufferage = &self.sufferage;
            let drop_base = self.config.drop_threshold;
            let threshold_for = move |tt: TaskTypeId| match (adaptive, sufferage) {
                (Some(a), _) => a.drop_threshold_for(tt),
                (None, Some(s)) => s.relax(tt, drop_base),
                (None, None) => drop_base,
            };
            self.instr.pruner_drops +=
                self.pruner.drop_pass(ctx, &mut scorer, &threshold_for) as u64;
        }

        // Two-phase mapping with deferral, reduced over the incremental
        // (window × machine) score table: the full matrix is computed once
        // per event in a per-machine fan-out (with a bound pass proving
        // most to-be-deferred rows skippable), and each assignment then
        // refreshes only the assigned machine's column (plus one appended
        // row when a batch task slides into the window). Every score the
        // reduction reads is bit-identical to what per-pair rescoring
        // would produce, so decisions are unchanged.
        let adaptive = &self.adaptive;
        let sufferage = &self.sufferage;
        let defer_base = self.config.defer_threshold;
        // Same thresholds the reduction applies below — a row skipped by
        // the bound pass is exactly a row the reduction would defer.
        let skip_below = move |tt: TaskTypeId| match (adaptive, sufferage) {
            (Some(a), _) => a.defer_threshold_for(tt),
            (None, Some(s)) => s.relax(tt, defer_base),
            (None, None) => defer_base,
        };
        let mut table = std::mem::take(&mut self.table);
        let mut table_fresh = false;
        loop {
            if ctx.total_free_slots() == 0 {
                break;
            }
            let window = self.config.batch_window.min(ctx.batch().len());
            if window == 0 {
                break;
            }
            if !table_fresh {
                // Same-tick burst reuse: a second mapping event at the same
                // instant (and membership epoch) revalidates the previous
                // event's table — rescoring only version-changed machines —
                // instead of rebuilding from scratch.
                if self.config.table_reuse {
                    if table.ensure(
                        &mut scorer,
                        ctx.machines(),
                        &ctx.batch()[..window],
                        &skip_below,
                    ) {
                        self.instr.table_reuses += 1;
                    }
                } else {
                    table.rebuild(&mut scorer, ctx.machines(), &ctx.batch()[..window], &skip_below);
                }
                table_fresh = true;
            }
            debug_assert_eq!(table.rows(), window, "table drifted from batch window");
            // Phase 1 + deferral: candidates above the (possibly relaxed)
            // defer threshold; phase 2: minimum expected completion, tie →
            // shortest expected execution time.
            let mut chosen: Option<(usize, TaskId, MachineId, PairScore)> = None;
            for i in 0..window {
                let task = ctx.batch()[i];
                let Some((machine, score)) = table.best_for_row(ctx.machines(), i) else {
                    continue;
                };
                if score.robustness < self.defer_threshold_for(task.type_id) {
                    continue; // deferred: stays in the batch queue
                }
                let better = match &chosen {
                    None => true,
                    Some((_, _, _, b)) => {
                        score.expected_completion < b.expected_completion
                            || (score.expected_completion == b.expected_completion
                                && score.mean_exec < b.mean_exec)
                    }
                };
                if better {
                    chosen = Some((i, task.id, machine, score));
                }
            }
            let Some((row, task_id, machine, _)) = chosen else { break };
            ctx.assign(task_id, machine).expect("machine had a free slot");
            // Incremental maintenance: drop the assigned row, admit batch
            // tasks that slid into the window, rescore only the column of
            // the machine whose queue just changed.
            table.remove_row(row);
            let next_window = self.config.batch_window.min(ctx.batch().len());
            while table.rows() < next_window {
                let admitted = ctx.batch()[table.rows()];
                table.push_row(&mut scorer, ctx.machines(), &admitted, &skip_below);
            }
            table.refresh_machine(
                &mut scorer,
                ctx.machines(),
                &ctx.batch()[..next_window],
                machine.index(),
            );
        }
        self.table = table;

        // §VIII extension: probabilistic preemption for urgent arrivals
        // that the normal phases had to defer.
        if self.config.preemption {
            self.try_preempt(ctx, &scorer);
        }

        self.scorer = Some(scorer);
    }

    fn on_task_finished(&mut self, task: &Task, outcome: TaskOutcome) {
        if let Some(a) = &mut self.adaptive {
            // Threshold drift moves the skip thresholds between events;
            // same-tick reuse only rechecks bounds that a *machine* change
            // loosened, so a window-boundary adjustment forces a rebuild.
            if a.observe(task.type_id, outcome) {
                self.table.invalidate();
            }
        } else if let Some(s) = &mut self.sufferage {
            s.on_task_finished(task.type_id, outcome.is_success());
            // Same reasoning for sufferage drift.
            self.table.invalidate();
        }
    }

    fn instrumentation(&self) -> Option<MapperInstrumentation> {
        Some(self.instr)
    }

    fn snapshot_state(&self) -> Vec<u8> {
        // History-dependent state only: detector level/toggle, sufferage
        // vector, instrumentation counters, adaptive-controller state. The
        // scorer and score table are pure caches — decision-identical when
        // rebuilt cold — so they are deliberately not captured (only
        // `table_reuses` may then diverge after a restore, and it feeds no
        // report field).
        let mut buf = Vec::with_capacity(96);
        buf.extend_from_slice(&PAM_BLOB_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.detector.level().to_bits().to_le_bytes());
        buf.push(u8::from(self.detector.dropping_engaged()));
        match &self.sufferage {
            Some(s) => {
                buf.push(1);
                buf.extend_from_slice(&(s.values().len() as u64).to_le_bytes());
                for v in s.values() {
                    buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            None => buf.push(0),
        }
        for counter in [
            self.instr.mapping_events,
            self.instr.events_dropping_engaged,
            self.instr.toggle_transitions,
            self.instr.pruner_drops,
            self.instr.preemptions,
            self.instr.table_reuses,
        ] {
            buf.extend_from_slice(&counter.to_le_bytes());
        }
        // v2 appendix: the deep-calm occupancy counter plus the adaptive
        // controller's dynamic state. v1 blobs simply end after the six
        // counters above, which `restore_state` still accepts.
        buf.extend_from_slice(&self.instr.events_deep_calm.to_le_bytes());
        match &self.adaptive {
            Some(a) => {
                buf.push(1);
                let state = a.state_bytes();
                buf.extend_from_slice(&(state.len() as u64).to_le_bytes());
                buf.extend_from_slice(&state);
            }
            None => buf.push(0),
        }
        buf
    }

    fn restore_state(&mut self, bytes: &[u8]) {
        // The blob is opaque to the engine, so unlike the engine snapshot
        // this panics (rather than erroring) on a malformed buffer.
        if bytes.is_empty() {
            return; // fresh mapper: nothing to restore
        }
        let mut r = BlobReader { buf: bytes, pos: 0 };
        let version = u32::from_le_bytes(r.take(4).try_into().expect("4 bytes"));
        assert!(
            (1..=PAM_BLOB_VERSION).contains(&version),
            "unsupported PAM state blob version {version}"
        );
        let level = f64::from_bits(r.u64());
        let engaged = r.u8() != 0;
        self.detector.restore(level, engaged);
        self.sufferage = match r.u8() {
            0 => None,
            1 => {
                let n = usize::try_from(r.u64()).expect("sufferage length");
                let values = (0..n).map(|_| f64::from_bits(r.u64())).collect();
                Some(SufferageTable::from_values(values, self.config.fairness_factor))
            }
            other => panic!("corrupt PAM state blob: sufferage flag {other}"),
        };
        self.instr.mapping_events = r.u64();
        self.instr.events_dropping_engaged = r.u64();
        self.instr.toggle_transitions = r.u64();
        self.instr.pruner_drops = r.u64();
        self.instr.preemptions = r.u64();
        self.instr.table_reuses = r.u64();
        // v1 blobs (from checkpoints taken before the adaptive controller
        // existed) end here; the controller then starts fresh at the next
        // mapping event, exactly as a pre-adaptation run would.
        self.adaptive = None;
        self.instr.events_deep_calm = 0;
        if version >= 2 {
            self.instr.events_deep_calm = r.u64();
            match r.u8() {
                0 => {}
                1 => {
                    let n = usize::try_from(r.u64()).expect("adaptive state length");
                    let acfg = self.config.adaptive.unwrap_or_default();
                    let mut controller = AdaptiveController::new(
                        acfg,
                        0, // class table is overwritten by the state below
                        self.config.drop_threshold,
                        self.config.defer_threshold,
                    );
                    controller.restore_state(r.take(n));
                    self.adaptive = Some(controller);
                }
                other => panic!("corrupt PAM state blob: adaptive flag {other}"),
            }
        }
        assert_eq!(r.pos, bytes.len(), "corrupt PAM state blob: trailing bytes");
        // The score table belongs to the pre-snapshot event stream.
        self.table.invalidate();
    }

    fn on_shutdown(&mut self) {
        if let Some(scorer) = &mut self.scorer {
            scorer.shutdown(std::time::Duration::from_secs(5));
        }
    }
}

/// Format version of the PAM `snapshot_state` blob. v2 appends the
/// adaptive-controller section; v1 blobs are still restorable (the
/// controller then starts fresh).
const PAM_BLOB_VERSION: u32 = 2;

/// Minimal cursor for decoding the PAM state blob (panics on truncation —
/// the blob never leaves the snapshot the engine already validated).
struct BlobReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl BlobReader<'_> {
    fn take(&mut self, n: usize) -> &[u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

impl Pam {
    /// Preempts at most one executing task per event, when an otherwise-
    /// deferred batch task would meet the defer threshold if started
    /// immediately AND the incumbent — modeled by its residual execution
    /// PMF — would still meet the defer threshold after resuming behind
    /// it. Machines with pending work are skipped (their queues would be
    /// pushed back too).
    fn try_preempt(&mut self, ctx: &mut MapContext<'_>, scorer: &ProbScorer) {
        let now = ctx.now();
        let pet = &ctx.spec().pet;
        let window = self.config.batch_window.min(ctx.batch().len());
        let idle_tail = Pmf::delta(now);

        let mut best: Option<(TaskId, MachineId, f64)> = None;
        for i in 0..window {
            let task = ctx.batch()[i];
            let defer_t = self.defer_threshold_for(task.type_id);
            for m in 0..ctx.num_machines() {
                let machine_id = MachineId::from(m);
                let machine = ctx.machine(machine_id);
                let Some(exec) = machine.executing() else { continue };
                if machine.pending().len() > 0 {
                    continue; // conservative: do not push back queued work
                }
                // (a) The urgent task succeeds if it starts right now.
                let immediate =
                    scorer.score_against_tail(&idle_tail, task.type_id, machine_id, task.deadline);
                if immediate.robustness < defer_t {
                    continue;
                }
                // (b) The incumbent can afford the delay: chain its
                // residual behind the urgent task's completion.
                let urgent_completion = pet.pmf(task.type_id, machine_id).shift(now);
                let residual =
                    pet.pmf(exec.task.type_id, machine_id).residual(exec.elapsed_at(now));
                let resumed =
                    queue_step(&urgent_completion, &residual, exec.task.deadline, scorer.policy());
                if resumed.robustness < self.defer_threshold_for(exec.task.type_id) {
                    continue;
                }
                if best.is_none_or(|(_, _, r)| immediate.robustness > r) {
                    best = Some((task.id, machine_id, immediate.robustness));
                }
            }
        }
        if let Some((task_id, machine_id, _)) = best {
            ctx.preempt_and_assign(machine_id, task_id)
                .expect("machine verified executing, task from batch");
            self.instr.preemptions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsim_model::{MachineSpec, PetBuilder, PriceTable, SystemSpec, TaskTypeSpec};
    use hcsim_sim::{run_simulation, SimConfig, SimReport};
    use hcsim_stats::SeedSequence;
    use hcsim_workload::{specint_system, WorkloadConfig, WorkloadGenerator};

    fn oversubscribed_report(kind: &str, oversub: f64, seed: u64) -> SimReport {
        let seeds = SeedSequence::new(seed);
        let spec = specint_system(6, &mut seeds.stream(0));
        let gen = WorkloadGenerator::new(WorkloadConfig {
            num_tasks: 250,
            oversubscription: oversub,
            ..Default::default()
        });
        let tasks = gen.generate(&spec, &mut seeds.stream(1));
        let cfg = PruningConfig::default();
        let mut rng = seeds.stream(2);
        let config = SimConfig { trim: 25, ..SimConfig::default() };
        match kind {
            "PAM" => {
                let mut m = Pam::new(cfg);
                run_simulation(&spec, config, &tasks, &mut m, &mut rng)
            }
            "PAMF" => {
                let mut m = Pam::with_fairness(cfg);
                run_simulation(&spec, config, &tasks, &mut m, &mut rng)
            }
            "MM" => {
                let mut m = crate::ScalarMapper::mm();
                run_simulation(&spec, config, &tasks, &mut m, &mut rng)
            }
            other => panic!("unknown {other}"),
        }
    }

    #[test]
    fn pam_names() {
        assert_eq!(Pam::new(PruningConfig::default()).name(), "PAM");
        assert_eq!(Pam::with_fairness(PruningConfig::default()).name(), "PAMF");
    }

    #[test]
    fn pam_runs_and_completes_all_records() {
        let report = oversubscribed_report("PAM", 19_000.0, 42);
        assert_eq!(report.records.len(), 250);
        assert_eq!(report.metrics.outcomes.total(), report.metrics.counted);
        assert!(report.metrics.pct_on_time > 0.0, "{:?}", report.metrics.outcomes);
    }

    #[test]
    fn pam_prunes_under_oversubscription() {
        let report = oversubscribed_report("PAM", 34_000.0, 43);
        // The dropping toggle must have engaged and removed tasks.
        let pruned_total: usize = report
            .records
            .iter()
            .filter(|r| r.outcome == hcsim_model::TaskOutcome::PrunedDropped)
            .count();
        assert!(pruned_total > 0, "PAM never engaged dropping: {:?}", report.metrics.outcomes);
    }

    #[test]
    fn pam_beats_mm_under_heavy_oversubscription() {
        // The paper's headline claim (Fig. 7): probabilistic pruning
        // substantially outperforms MinMin when oversubscribed.
        let mut pam_wins = 0;
        for seed in [101, 202, 303] {
            let pam = oversubscribed_report("PAM", 34_000.0, seed);
            let mm = oversubscribed_report("MM", 34_000.0, seed);
            if pam.metrics.pct_on_time > mm.metrics.pct_on_time {
                pam_wins += 1;
            }
        }
        assert!(pam_wins >= 2, "PAM won only {pam_wins}/3 trials against MM");
    }

    #[test]
    fn pamf_reduces_type_variance_vs_pam() {
        // Fig. 6: fairness trades a little robustness for a lower variance
        // of per-type completion percentages. Averaged over seeds to damp
        // noise.
        let mut pam_var = 0.0;
        let mut pamf_var = 0.0;
        for seed in [11, 22, 33, 44] {
            pam_var += oversubscribed_report("PAM", 34_000.0, seed).metrics.type_variance;
            pamf_var += oversubscribed_report("PAMF", 34_000.0, seed).metrics.type_variance;
        }
        assert!(
            pamf_var < pam_var,
            "PAMF variance {pamf_var} should undercut PAM variance {pam_var}"
        );
    }

    #[test]
    fn pam_defers_hopeless_tasks_when_not_oversubscribed() {
        // A single machine, one task whose deadline is far too tight:
        // phase 1 robustness < defer threshold → never mapped, expires in
        // the batch queue (not evicted mid-queue, simply deferred).
        let mut rng = SeedSequence::new(50).stream(0);
        let (pet, truth) = PetBuilder::new().shape_range(6.0, 6.0).build(&[vec![100.0]], &mut rng);
        let spec = SystemSpec {
            machines: vec![MachineSpec { name: "m".into() }],
            task_types: vec![TaskTypeSpec { name: "t".into() }],
            pet,
            truth,
            prices: PriceTable::uniform(1, 1.0),
            queue_capacity: 6,
            coldstart: None,
        }
        .validated();
        let tasks = vec![Task {
            id: TaskId(0),
            type_id: TaskTypeId(0),
            arrival: 0,
            deadline: 10, // mean exec is 100: robustness ≈ 0
        }];
        let mut mapper = Pam::new(PruningConfig::default());
        let mut rng2 = SeedSequence::new(51).stream(0);
        let report = run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut rng2);
        assert_eq!(report.records[0].outcome, hcsim_model::TaskOutcome::ExpiredUnstarted);
        assert!(report.records[0].machine.is_none(), "task must never have been mapped");
        assert_eq!(report.total_cost, 0.0, "no machine time wasted on a hopeless task");
    }

    #[test]
    fn pam_maps_confident_tasks_immediately() {
        let mut rng = SeedSequence::new(52).stream(0);
        let (pet, truth) = PetBuilder::new().shape_range(6.0, 6.0).build(&[vec![20.0]], &mut rng);
        let spec = SystemSpec {
            machines: vec![MachineSpec { name: "m".into() }],
            task_types: vec![TaskTypeSpec { name: "t".into() }],
            pet,
            truth,
            prices: PriceTable::uniform(1, 1.0),
            queue_capacity: 6,
            coldstart: None,
        }
        .validated();
        let tasks = vec![Task { id: TaskId(0), type_id: TaskTypeId(0), arrival: 0, deadline: 500 }];
        let mut mapper = Pam::new(PruningConfig::default());
        let mut rng2 = SeedSequence::new(53).stream(0);
        let report = run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut rng2);
        assert_eq!(report.metrics.outcomes.on_time, 1);
    }

    #[test]
    fn detector_is_exposed_for_instrumentation() {
        let pam = Pam::new(PruningConfig::default());
        assert_eq!(pam.oversubscription_level(), 0.0);
        assert!(!pam.dropping_engaged());
    }

    #[test]
    fn pam_snapshot_roundtrip_is_bit_identical() {
        // Mid-run snapshot of the full stack (engine + PAM/PAMF history
        // state), restored into a *fresh* mapper and an unrelated-seed rng,
        // must finish with a byte-for-byte identical report. Heavy
        // oversubscription so the detector has engaged and (for PAMF)
        // sufferage values have drifted by the snapshot point. The
        // ADAPTIVE variant additionally requires the controller's window
        // counters, deltas, and per-class relief to survive the blob.
        for kind in ["PAM", "PAMF", "ADAPTIVE"] {
            let seeds = SeedSequence::new(77);
            let spec = specint_system(6, &mut seeds.stream(0));
            let gen = WorkloadGenerator::new(WorkloadConfig {
                num_tasks: 250,
                oversubscription: 34_000.0,
                ..Default::default()
            });
            let tasks = gen.generate(&spec, &mut seeds.stream(1));
            let config = SimConfig { trim: 25, ..SimConfig::default() };
            let make_mapper = || match kind {
                "PAM" => Pam::new(PruningConfig::default()),
                "ADAPTIVE" => Pam::new(PruningConfig {
                    adaptive: Some(crate::AdaptiveConfig::default()),
                    ..PruningConfig::default()
                }),
                _ => Pam::with_fairness(PruningConfig::default()),
            };

            // Uninterrupted reference run.
            let mut baseline_mapper = make_mapper();
            let mut baseline_rng = seeds.stream(2);
            let mut source = hcsim_sim::TaskTraceSource::new(&tasks);
            let baseline = hcsim_sim::SimSession::new(
                &spec,
                config,
                &mut [&mut source],
                &mut baseline_mapper,
                &mut baseline_rng,
            )
            .run_to_completion();

            // Interrupted run: step partway, snapshot, abandon, restore.
            let mut first_mapper = make_mapper();
            let mut first_rng = seeds.stream(2);
            let mut source = hcsim_sim::TaskTraceSource::new(&tasks);
            let mut session = hcsim_sim::SimSession::new(
                &spec,
                config,
                &mut [&mut source],
                &mut first_mapper,
                &mut first_rng,
            );
            for _ in 0..150 {
                assert!(session.step(), "run ended before the snapshot point");
            }
            let bytes = session.snapshot();
            drop(session);

            let mut restored_mapper = make_mapper();
            let mut restored_rng = seeds.stream(9); // overwritten by restore
            let resumed = hcsim_sim::SimSession::restore(
                &spec,
                config,
                &bytes,
                &mut restored_mapper,
                &mut restored_rng,
            )
            .unwrap_or_else(|e| panic!("{kind} restore failed: {e}"))
            .run_to_completion();

            assert_eq!(
                format!("{baseline:?}"),
                format!("{resumed:?}"),
                "{kind} resumed run diverged from the uninterrupted baseline"
            );
        }
    }

    #[test]
    fn v1_blob_still_restores() {
        // Checkpoints written before the adaptive controller existed carry
        // a version-1 blob that simply ends after the instrumentation
        // counters. Restoring one must succeed, leaving the controller
        // unset so it starts fresh at the next mapping event.
        let pam = Pam::new(PruningConfig::default());
        let v2 = pam.snapshot_state();
        // A fresh PAM has no adaptive state: the v2 blob is exactly the v1
        // payload plus the deep-calm counter (u64) and the trailing
        // presence flag (0).
        assert_eq!(*v2.last().unwrap(), 0, "fresh PAM must have no adaptive section");
        let mut v1 = v2.clone();
        v1.truncate(v2.len() - 9);
        v1[..4].copy_from_slice(&1u32.to_le_bytes());

        let mut restored = Pam::new(PruningConfig {
            adaptive: Some(crate::AdaptiveConfig::default()),
            ..PruningConfig::default()
        });
        restored.restore_state(&v1);
        assert!(restored.adaptive().is_none(), "v1 blob cannot carry controller state");
    }

    #[test]
    fn adaptive_state_survives_blob_roundtrip() {
        // Drive an adaptive PAM through an oversubscribed run so the
        // controller has adjusted at least once, then round-trip its state
        // through the v2 blob into a fresh mapper.
        let seeds = SeedSequence::new(88);
        let spec = specint_system(6, &mut seeds.stream(0));
        let gen = WorkloadGenerator::new(WorkloadConfig {
            num_tasks: 250,
            oversubscription: 34_000.0,
            ..Default::default()
        });
        let tasks = gen.generate(&spec, &mut seeds.stream(1));
        let cfg = PruningConfig {
            adaptive: Some(crate::AdaptiveConfig::default()),
            ..PruningConfig::default()
        };
        let mut mapper = Pam::new(cfg);
        let mut rng = seeds.stream(2);
        let _ = run_simulation(
            &spec,
            SimConfig { trim: 25, ..SimConfig::default() },
            &tasks,
            &mut mapper,
            &mut rng,
        );
        let controller = mapper.adaptive().expect("controller must have been built").clone();
        assert!(controller.adjustments() > 0, "250 tasks must cross at least one window");

        let blob = mapper.snapshot_state();
        let mut fresh = Pam::new(cfg);
        fresh.restore_state(&blob);
        assert_eq!(fresh.adaptive(), Some(&controller));
    }

    #[test]
    fn pam_shutdown_is_safe_before_and_after_init() {
        let mut pam = Pam::new(PruningConfig::default());
        pam.on_shutdown(); // no scorer yet: must be a no-op
        let _ = oversubscribed_report("PAM", 19_000.0, 7); // sanity anchor
        let seeds = SeedSequence::new(8);
        let spec = specint_system(6, &mut seeds.stream(0));
        let gen = WorkloadGenerator::new(WorkloadConfig {
            num_tasks: 60,
            oversubscription: 19_000.0,
            ..Default::default()
        });
        let tasks = gen.generate(&spec, &mut seeds.stream(1));
        let mut rng = seeds.stream(2);
        let _ = run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut pam, &mut rng);
        pam.on_shutdown();
        pam.on_shutdown(); // idempotent
    }
}
