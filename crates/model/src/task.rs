//! Task instances and their lifecycle outcomes.

use crate::{MachineId, TaskId, TaskTypeId, Time};
use serde::{Deserialize, Serialize};

/// A task instance: an arrival of one task type with a hard deadline.
///
/// §III: "Each task is considered to have a hard individual deadline, past
/// which, no value remains in executing the task."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id within the workload.
    pub id: TaskId,
    /// The task's type (PET matrix row).
    pub type_id: TaskTypeId,
    /// Arrival time α.
    pub arrival: Time,
    /// Hard deadline δ.
    pub deadline: Time,
}

impl Task {
    /// Remaining slack at `now`: `δ − now`, or zero if the deadline has
    /// passed.
    #[must_use]
    pub fn slack_at(&self, now: Time) -> Time {
        self.deadline.saturating_sub(now)
    }

    /// True when the deadline has passed at `now` (a task due exactly now
    /// can still complete on time).
    #[must_use]
    pub fn is_expired_at(&self, now: Time) -> bool {
        now > self.deadline
    }
}

/// Terminal state of a task in one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// Completed at or before its deadline — the success the robustness
    /// metric counts.
    CompletedOnTime,
    /// Completed after its deadline (only possible under
    /// [`hcsim_pmf::DropPolicy::None`] / `PendingOnly`, where an executing
    /// task may run past its deadline).
    CompletedLate,
    /// Evicted at its deadline but far enough along to deliver a degraded
    /// result (the paper's §VIII "approximately compute tasks" future
    /// work; enabled via `SimConfig::approx_min_progress`). Not a
    /// robustness success, but counted separately as salvaged service.
    CompletedApprox,
    /// Removed from the batch queue or a machine queue because its deadline
    /// passed before it could start.
    ExpiredUnstarted,
    /// Evicted mid-execution when its deadline passed.
    ExpiredExecuting,
    /// Removed by the pruning mechanism's probabilistic dropper while
    /// pending in a machine queue.
    PrunedDropped,
    /// Still in the batch queue when the simulation ended (deadline not yet
    /// reached); counted as unsuccessful.
    Unfinished,
    /// Removed by a system policy outside the paper's model: admission-level
    /// load shedding in service mode, or the failure-requeue retry cap
    /// (`SimConfig::max_requeues`). Always accounted — a shed task still gets
    /// a terminal record and counts against robustness.
    Shed,
}

impl TaskOutcome {
    /// True only for [`TaskOutcome::CompletedOnTime`].
    #[must_use]
    pub fn is_success(self) -> bool {
        matches!(self, TaskOutcome::CompletedOnTime)
    }

    /// True when the task consumed machine time (it started executing).
    /// (A pruner eviction mid-execution also consumes machine time; that
    /// case is visible through [`TaskRecord::machine_time`] instead.)
    #[must_use]
    pub fn consumed_machine_time(self) -> bool {
        matches!(
            self,
            TaskOutcome::CompletedOnTime
                | TaskOutcome::CompletedLate
                | TaskOutcome::CompletedApprox
                | TaskOutcome::ExpiredExecuting
        )
    }
}

/// Full per-task record emitted by the simulator for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task.
    pub task: Task,
    /// Terminal outcome.
    pub outcome: TaskOutcome,
    /// Machine the task ran on (if it started executing).
    pub machine: Option<MachineId>,
    /// Time execution began, if it did.
    pub started_at: Option<Time>,
    /// Time the task left the system (completion, eviction, or drop).
    pub finished_at: Time,
    /// Machine time consumed (execution until completion or eviction).
    pub machine_time: Time,
}

impl TaskRecord {
    /// Convenience: the task completed at or before its deadline.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.outcome.is_success()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(arrival: Time, deadline: Time) -> Task {
        Task { id: TaskId(0), type_id: TaskTypeId(0), arrival, deadline }
    }

    #[test]
    fn slack_saturates() {
        let t = task(0, 100);
        assert_eq!(t.slack_at(40), 60);
        assert_eq!(t.slack_at(100), 0);
        assert_eq!(t.slack_at(150), 0);
    }

    #[test]
    fn expiry_is_strict() {
        let t = task(0, 100);
        assert!(!t.is_expired_at(99));
        assert!(!t.is_expired_at(100), "due exactly now can still succeed");
        assert!(t.is_expired_at(101));
    }

    #[test]
    fn outcome_success_classification() {
        assert!(TaskOutcome::CompletedOnTime.is_success());
        for o in [
            TaskOutcome::CompletedLate,
            TaskOutcome::CompletedApprox,
            TaskOutcome::ExpiredUnstarted,
            TaskOutcome::ExpiredExecuting,
            TaskOutcome::PrunedDropped,
            TaskOutcome::Unfinished,
            TaskOutcome::Shed,
        ] {
            assert!(!o.is_success(), "{o:?}");
        }
    }

    #[test]
    fn outcome_machine_time_classification() {
        assert!(TaskOutcome::CompletedOnTime.consumed_machine_time());
        assert!(TaskOutcome::CompletedLate.consumed_machine_time());
        assert!(TaskOutcome::CompletedApprox.consumed_machine_time());
        assert!(TaskOutcome::ExpiredExecuting.consumed_machine_time());
        assert!(!TaskOutcome::ExpiredUnstarted.consumed_machine_time());
        assert!(!TaskOutcome::PrunedDropped.consumed_machine_time());
        assert!(!TaskOutcome::Unfinished.consumed_machine_time());
        assert!(!TaskOutcome::Shed.consumed_machine_time());
    }
}
