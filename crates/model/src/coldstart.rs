//! Serverless cold-start model: container spin-up PMFs and keep-alive.
//!
//! The sequel paper (Denninnart, Gentry, Salehi — "Improving Robustness of
//! Heterogeneous Serverless Computing Systems Via Probabilistic Task
//! Pruning", arXiv:1905.04456) moves the pruning machinery to FaaS. The
//! one structural change to the system model: a request arriving at a
//! machine with no *warm container* for its function first pays a
//! container spin-up, so its completion PMF is the convolution of the
//! spin-up PMF with the execution PMF. A completed function leaves its
//! container warm for a *keep-alive* window; requests of the same
//! function landing inside that window skip the spin-up entirely.
//!
//! [`ColdStartModel`] carries the spin-up side of that world, mirroring
//! the warm side's split between scheduler belief and simulator truth:
//!
//! * `spinup` — the spin-up-time [`PetMatrix`] the *scorer* convolves
//!   onto cold placements (one PMF per (function, machine) cell);
//! * `truth` — the [`GroundTruth`] distributions the *simulator* draws
//!   actual spin-up times from;
//! * `keep_alive` — how long a container stays warm after its function
//!   completes.

use crate::{GroundTruth, PetMatrix, Time};
use hcsim_pmf::{convolve, Pmf};
use serde::{Deserialize, Serialize};

/// The cold-start side of a serverless system: spin-up PMFs (belief and
/// truth) plus the keep-alive window. Attached to a system via
/// [`crate::SystemSpec::coldstart`]; `None` there means the classic HC
/// model where every start is "warm".
///
/// Dimensions must match the system's execution PET — a spin-up cell per
/// (function, machine) pair — which [`crate::SystemSpec::validated`]
/// enforces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdStartModel {
    /// Scheduler's belief: spin-up-time PMF per (function, machine).
    pub spinup: PetMatrix,
    /// Simulator's world: the distributions actual spin-up times are
    /// drawn from.
    pub truth: GroundTruth,
    /// Keep-alive window: a container stays warm for this long after its
    /// function completes (0 = containers die immediately, every start
    /// is cold).
    pub keep_alive: Time,
}

impl ColdStartModel {
    /// Asserts the spin-up matrices match the given system dimensions.
    ///
    /// # Panics
    ///
    /// Panics when either spin-up matrix disagrees with
    /// `(task_types, machines)`.
    pub fn assert_dims(&self, task_types: usize, machines: usize) {
        assert_eq!(self.spinup.task_types(), task_types, "spin-up PET task type count");
        assert_eq!(self.spinup.machines(), machines, "spin-up PET machine count");
        assert_eq!(self.truth.task_types(), task_types, "spin-up truth task type count");
        assert_eq!(self.truth.machines(), machines, "spin-up truth machine count");
    }

    /// The *cold* completion-time PMF of one cell: spin-up ⊛ execution,
    /// compacted to `budget` impulses (0 = no compaction).
    ///
    /// ```
    /// use hcsim_model::{ColdStartModel, GroundTruth, MachineId, PetMatrix, TaskTypeId};
    /// use hcsim_pmf::Pmf;
    ///
    /// let exec = Pmf::from_points(&[(10, 1.0)]).unwrap();
    /// let spin = Pmf::from_points(&[(3, 0.5), (5, 0.5)]).unwrap();
    /// let model = ColdStartModel {
    ///     spinup: PetMatrix::from_pmfs(1, 1, vec![spin]),
    ///     truth: GroundTruth::from_params(1, 1, vec![(4.0, 8.0)]),
    ///     keep_alive: 50,
    /// };
    /// let warm = PetMatrix::from_pmfs(1, 1, vec![exec]);
    /// let cold = model.cold_cell(&warm, TaskTypeId(0), MachineId(0), 32);
    /// assert_eq!(cold.times(), &[13, 15]); // spin-up prepended
    /// assert!(cold.is_normalized());
    /// ```
    #[must_use]
    pub fn cold_cell(
        &self,
        warm: &PetMatrix,
        tt: crate::TaskTypeId,
        m: crate::MachineId,
        budget: usize,
    ) -> Pmf {
        let mut cold = convolve(self.spinup.pmf(tt, m), warm.pmf(tt, m));
        if budget > 0 {
            cold.compact(budget);
        }
        cold
    }

    /// The full *cold* PET: every cell of `warm` convolved with its
    /// spin-up PMF, compacted to `budget` impulses — what the scorer uses
    /// for placements that would start a fresh container.
    ///
    /// # Panics
    ///
    /// Panics when `warm`'s dimensions disagree with the spin-up matrix.
    #[must_use]
    pub fn cold_pet(&self, warm: &PetMatrix, budget: usize) -> PetMatrix {
        self.assert_dims(warm.task_types(), warm.machines());
        let (task_types, machines) = (warm.task_types(), warm.machines());
        let mut pmfs = Vec::with_capacity(task_types * machines);
        for tt in 0..task_types {
            for m in 0..machines {
                pmfs.push(self.cold_cell(
                    warm,
                    crate::TaskTypeId::from(tt),
                    crate::MachineId::from(m),
                    budget,
                ));
            }
        }
        PetMatrix::from_pmfs(task_types, machines, pmfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineId, PetBuilder, TaskTypeId};
    use hcsim_stats::SeedSequence;

    fn model_and_warm() -> (ColdStartModel, PetMatrix) {
        let mut rng = SeedSequence::new(7).stream(0);
        let exec_means = vec![vec![20.0, 40.0], vec![30.0, 15.0]];
        let spin_means = vec![vec![100.0, 80.0], vec![100.0, 80.0]];
        let (warm, _) = PetBuilder::new().build(&exec_means, &mut rng);
        let (spinup, truth) = PetBuilder::new().build(&spin_means, &mut rng);
        (ColdStartModel { spinup, truth, keep_alive: 500 }, warm)
    }

    #[test]
    fn cold_pet_mean_is_sum_of_parts() {
        let (model, warm) = model_and_warm();
        // Uncompacted convolution preserves the mean exactly.
        let cold = model.cold_pet(&warm, 0);
        for tt in 0..2u16 {
            for m in 0..2usize {
                let (tt, m) = (TaskTypeId(tt), MachineId::from(m));
                let want = warm.mean_exec(tt, m) + model.spinup.mean_exec(tt, m);
                let got = cold.mean_exec(tt, m);
                assert!((got - want).abs() < 1e-6, "cell ({tt:?},{m:?}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn cold_pet_respects_budget_and_mass() {
        let (model, warm) = model_and_warm();
        let cold = model.cold_pet(&warm, 16);
        for tt in 0..2u16 {
            for m in 0..2usize {
                let pmf = cold.pmf(TaskTypeId(tt), MachineId::from(m));
                assert!(pmf.len() <= 16);
                assert!(pmf.is_normalized(), "mass {}", pmf.mass());
            }
        }
    }

    #[test]
    fn cold_never_beats_warm_stochastically() {
        let (model, warm) = model_and_warm();
        let cold = model.cold_pet(&warm, 0);
        // Spin-up is a non-negative delay: the cold CDF is dominated by
        // the warm CDF everywhere (first-order stochastic dominance).
        for tt in 0..2u16 {
            for m in 0..2usize {
                let (tt, m) = (TaskTypeId(tt), MachineId::from(m));
                let w = warm.pmf(tt, m);
                let c = cold.pmf(tt, m);
                for t in (0..400).step_by(7) {
                    assert!(c.cdf_at(t) <= w.cdf_at(t) + 1e-12, "t={t} cell ({tt:?},{m:?})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "spin-up PET machine count")]
    fn dim_mismatch_caught() {
        let (model, _) = model_and_warm();
        model.assert_dims(2, 3);
    }
}
