//! Cloud pricing and machine-usage cost accounting (§VII-F).
//!
//! "To investigate the incurred cost of using resources, pricing from
//! Amazon cloud VMs has been mapped to the machines in the simulation.
//! Each machine's usage time is tracked. The price incurred to process the
//! tasks is divided by the percentage of on-time tasks completed to provide
//! a normalized view of the incurred costs in the system."

use crate::{MachineId, Time};
use serde::{Deserialize, Serialize};

/// Per-machine prices in USD per hour of busy time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTable {
    usd_per_hour: Vec<f64>,
}

/// Number of simulation time units (milliseconds) per billed hour.
const MS_PER_HOUR: f64 = 3_600_000.0;

impl PriceTable {
    /// Creates a price table from per-machine hourly prices.
    ///
    /// # Panics
    ///
    /// Panics if empty or if any price is negative or non-finite.
    #[must_use]
    pub fn new(usd_per_hour: Vec<f64>) -> Self {
        assert!(!usd_per_hour.is_empty(), "price table must cover at least one machine");
        for &p in &usd_per_hour {
            assert!(p.is_finite() && p >= 0.0, "prices must be finite and non-negative");
        }
        Self { usd_per_hour }
    }

    /// A uniform price for `machines` machines (useful in tests and as the
    /// trivial baseline where cost is proportional to busy time).
    #[must_use]
    pub fn uniform(machines: usize, usd_per_hour: f64) -> Self {
        Self::new(vec![usd_per_hour; machines])
    }

    /// Number of machines covered.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.usd_per_hour.len()
    }

    /// Hourly price of machine `m`.
    #[must_use]
    pub fn usd_per_hour(&self, m: MachineId) -> f64 {
        self.usd_per_hour[m.index()]
    }

    /// Cost of `busy` time units on machine `m`.
    #[must_use]
    pub fn cost_of(&self, m: MachineId, busy: Time) -> f64 {
        self.usd_per_hour(m) * busy as f64 / MS_PER_HOUR
    }
}

/// Accumulates per-machine busy time during a simulation and prices it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTracker {
    busy: Vec<Time>,
}

impl CostTracker {
    /// Creates a tracker for `machines` machines.
    #[must_use]
    pub fn new(machines: usize) -> Self {
        Self { busy: vec![0; machines] }
    }

    /// Records `duration` time units of busy time on machine `m`.
    pub fn record_busy(&mut self, m: MachineId, duration: Time) {
        self.busy[m.index()] += duration;
    }

    /// Total busy time of machine `m`.
    #[must_use]
    pub fn busy_time(&self, m: MachineId) -> Time {
        self.busy[m.index()]
    }

    /// Total busy time over all machines.
    #[must_use]
    pub fn total_busy_time(&self) -> Time {
        self.busy.iter().sum()
    }

    /// Total incurred cost under `prices`.
    ///
    /// # Panics
    ///
    /// Panics if the price table covers a different machine count.
    #[must_use]
    pub fn total_cost(&self, prices: &PriceTable) -> f64 {
        assert_eq!(prices.machines(), self.busy.len(), "price table / tracker size mismatch");
        self.busy
            .iter()
            .enumerate()
            .map(|(m, &busy)| prices.cost_of(MachineId::from(m), busy))
            .sum()
    }

    /// The paper's Fig. 8 metric: total cost divided by the *percentage*
    /// of tasks completed on time. Returns `None` when the percentage is
    /// zero (the paper calls these points "unchartable").
    #[must_use]
    pub fn cost_per_percent_on_time(
        &self,
        prices: &PriceTable,
        percent_on_time: f64,
    ) -> Option<f64> {
        if percent_on_time <= 0.0 {
            None
        } else {
            Some(self.total_cost(prices) / percent_on_time)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_lookup_and_cost() {
        let prices = PriceTable::new(vec![3.6, 7.2]);
        assert_eq!(prices.machines(), 2);
        assert_eq!(prices.usd_per_hour(MachineId(1)), 7.2);
        // 30 minutes on machine 0 at 3.6/h = 1.8.
        assert!((prices.cost_of(MachineId(0), 1_800_000) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn uniform_table() {
        let prices = PriceTable::uniform(4, 1.0);
        for m in 0..4u16 {
            assert_eq!(prices.usd_per_hour(MachineId(m)), 1.0);
        }
    }

    #[test]
    fn tracker_accumulates() {
        let mut tracker = CostTracker::new(3);
        tracker.record_busy(MachineId(0), 100);
        tracker.record_busy(MachineId(0), 50);
        tracker.record_busy(MachineId(2), 25);
        assert_eq!(tracker.busy_time(MachineId(0)), 150);
        assert_eq!(tracker.busy_time(MachineId(1)), 0);
        assert_eq!(tracker.total_busy_time(), 175);
    }

    #[test]
    fn total_cost_weights_by_machine_price() {
        let prices = PriceTable::new(vec![3.6, 36.0]);
        let mut tracker = CostTracker::new(2);
        tracker.record_busy(MachineId(0), 1_000_000);
        tracker.record_busy(MachineId(1), 1_000_000);
        let want = 3.6 / 3.6 + 36.0 / 3.6; // 1 + 10
        assert!((tracker.total_cost(&prices) - want).abs() < 1e-9);
    }

    #[test]
    fn cost_per_percent_metric() {
        let prices = PriceTable::uniform(1, 3.6);
        let mut tracker = CostTracker::new(1);
        tracker.record_busy(MachineId(0), 3_600_000); // exactly 3.6 USD
        let normalized = tracker.cost_per_percent_on_time(&prices, 40.0).unwrap();
        assert!((normalized - 0.09).abs() < 1e-12);
        assert!(tracker.cost_per_percent_on_time(&prices, 0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn tracker_price_mismatch_panics() {
        let tracker = CostTracker::new(2);
        let _ = tracker.total_cost(&PriceTable::uniform(3, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_price_rejected() {
        let _ = PriceTable::new(vec![-1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_price_table_rejected() {
        let _ = PriceTable::new(vec![]);
    }
}
