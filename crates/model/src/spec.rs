//! The assembled system specification handed to the simulator.

use crate::{ColdStartModel, GroundTruth, PetMatrix, PriceTable};
use serde::{Deserialize, Serialize};

/// One machine of the HC system.
///
/// Machines in this model are *individually* heterogeneous (§VI-A uses
/// eight distinct physical machines), so there is no separate machine-type
/// layer: a machine's identity is its PET column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable name (e.g. the benchmark machine it emulates).
    pub name: String,
}

/// One task type of the HC system (a PET row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTypeSpec {
    /// Human-readable name (e.g. the SPECint benchmark or transcoding
    /// operation it represents).
    pub name: String,
}

/// Everything static about an HC system: machines, task types, the PET
/// matrix the scheduler consults, the ground truth the simulator samples,
/// prices, and the machine-queue capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// The machines (PET columns).
    pub machines: Vec<MachineSpec>,
    /// The task types (PET rows).
    pub task_types: Vec<TaskTypeSpec>,
    /// The scheduler's probabilistic execution-time model.
    pub pet: PetMatrix,
    /// The distributions actual execution times are drawn from.
    pub truth: GroundTruth,
    /// Cloud prices for the cost experiments.
    pub prices: PriceTable,
    /// Machine-queue capacity *including* the executing task (§VII-A:
    /// "a machine-queue size of six, counting the executing task").
    pub queue_capacity: usize,
    /// Serverless cold-start model (spin-up PMFs + keep-alive). `None`
    /// keeps the classic HC semantics where every start is warm.
    pub coldstart: Option<ColdStartModel>,
}

impl SystemSpec {
    /// Validates internal consistency; returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics when any dimension disagrees (PET vs ground truth vs machine
    /// list vs price table) or the queue capacity is zero.
    #[must_use]
    pub fn validated(self) -> Self {
        assert_eq!(self.pet.machines(), self.machines.len(), "PET machine count");
        assert_eq!(self.pet.task_types(), self.task_types.len(), "PET task type count");
        assert_eq!(self.truth.machines(), self.machines.len(), "truth machine count");
        assert_eq!(self.truth.task_types(), self.task_types.len(), "truth task type count");
        assert_eq!(self.prices.machines(), self.machines.len(), "price table size");
        assert!(self.queue_capacity >= 1, "queue capacity must include the executing slot");
        if let Some(cold) = &self.coldstart {
            cold.assert_dims(self.task_types.len(), self.machines.len());
        }
        self
    }

    /// Number of machines.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Number of task types.
    #[must_use]
    pub fn num_task_types(&self) -> usize {
        self.task_types.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PetBuilder;
    use hcsim_stats::SeedSequence;

    fn spec() -> SystemSpec {
        let mut rng = SeedSequence::new(1).stream(0);
        let means = vec![vec![50.0, 100.0], vec![120.0, 60.0]];
        let (pet, truth) = PetBuilder::new().build(&means, &mut rng);
        SystemSpec {
            machines: vec![MachineSpec { name: "m0".into() }, MachineSpec { name: "m1".into() }],
            task_types: vec![
                TaskTypeSpec { name: "t0".into() },
                TaskTypeSpec { name: "t1".into() },
            ],
            pet,
            truth,
            prices: PriceTable::uniform(2, 1.0),
            queue_capacity: 6,
            coldstart: None,
        }
    }

    #[test]
    fn valid_spec_passes() {
        let s = spec().validated();
        assert_eq!(s.num_machines(), 2);
        assert_eq!(s.num_task_types(), 2);
    }

    #[test]
    #[should_panic(expected = "price table size")]
    fn price_mismatch_caught() {
        let mut s = spec();
        s.prices = PriceTable::uniform(3, 1.0);
        let _ = s.validated();
    }

    #[test]
    #[should_panic(expected = "PET machine count")]
    fn machine_count_mismatch_caught() {
        let mut s = spec();
        s.machines.push(MachineSpec { name: "extra".into() });
        s.prices = PriceTable::uniform(3, 1.0);
        let _ = s.validated();
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_capacity_caught() {
        let mut s = spec();
        s.queue_capacity = 0;
        let _ = s.validated();
    }
}
