//! Strongly-typed identifiers.
//!
//! Index-style newtypes keep task types, machines, and task instances from
//! being mixed up at compile time; all are plain indices into the vectors
//! held by [`crate::SystemSpec`] and the simulator.

use serde::{Deserialize, Serialize};

macro_rules! index_id {
    ($(#[$doc:meta])* $name:ident($repr:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The identifier as a `usize` index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v as $repr)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

index_id! {
    /// Identifies a task *type* (a row of the PET matrix).
    TaskTypeId(u16)
}

index_id! {
    /// Identifies a machine (a column of the PET matrix). Machines are
    /// individually heterogeneous, so machine identity and machine type
    /// coincide in this model.
    MachineId(u16)
}

index_id! {
    /// Identifies a task *instance* within one workload.
    TaskId(u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let t = TaskTypeId::from(3usize);
        assert_eq!(t.index(), 3);
        let m: MachineId = 7u16.into();
        assert_eq!(m.index(), 7);
        let id = TaskId(41);
        assert_eq!(id.index(), 41);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TaskTypeId(2).to_string(), "TaskTypeId2");
        assert_eq!(MachineId(0).to_string(), "MachineId0");
        assert_eq!(TaskId(9).to_string(), "TaskId9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TaskId(1));
        set.insert(TaskId(1));
        set.insert(TaskId(2));
        assert_eq!(set.len(), 2);
        assert!(TaskId(1) < TaskId(2));
    }
}
