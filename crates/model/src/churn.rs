//! Cluster-membership (churn) events.
//!
//! The paper's system model fixes the machine set for the lifetime of a
//! run; the serverless follow-up (arXiv:1905.04456) and real HC
//! deployments do not — machines join, are drained for maintenance, and
//! fail outright while tasks are in flight. A [`ChurnTrace`] describes
//! that membership timeline as plain data, making churn a first-class
//! workload input alongside the task trace: the simulator replays it
//! through the same event pipeline that delivers task arrivals.
//!
//! Semantics (enforced by the `hcsim-sim` engine, not here):
//!
//! * [`ChurnKind::Join`] — an offline machine becomes schedulable with an
//!   empty queue.
//! * [`ChurnKind::Drain`] — the machine stops accepting work but runs its
//!   queue to completion, then leaves the cluster (planned maintenance).
//! * [`ChurnKind::Fail`] — the machine leaves immediately; its pending
//!   *and* executing tasks re-enter the batch queue as re-arrivals with
//!   their deadlines unchanged (work in progress is lost).

use crate::{MachineId, Time};
use serde::{Deserialize, Serialize};

/// What happens to a machine at a churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The machine comes online with an empty queue.
    Join,
    /// The machine stops accepting new work, finishes its queue, and
    /// leaves.
    Drain,
    /// The machine leaves immediately; queued tasks are re-queued.
    Fail,
}

impl std::fmt::Display for ChurnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnKind::Join => write!(f, "join"),
            ChurnKind::Drain => write!(f, "drain"),
            ChurnKind::Fail => write!(f, "fail"),
        }
    }
}

/// One membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the change takes effect.
    pub time: Time,
    /// The machine affected.
    pub machine: MachineId,
    /// The change.
    pub kind: ChurnKind,
}

/// An advance warning that a machine will leave the cluster: planned
/// maintenance publishes its drain window ahead of time, and failure
/// predictors flag unhealthy machines before they die. The simulator
/// surfaces the notice to mappers (via the machine state) so phase-2
/// placement can bias away from soon-to-leave machines *before* the
/// membership event lands, instead of learning it indirectly through
/// degraded scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepartureNotice {
    /// When the notice becomes visible to the scheduler.
    pub time: Time,
    /// The machine expected to leave.
    pub machine: MachineId,
    /// When it is expected to leave (the matching churn event's time).
    pub departs_at: Time,
}

/// A full membership timeline for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Machines that are offline at `t = 0` (typically joining later via
    /// a [`ChurnKind::Join`] event); every other machine starts active.
    pub initially_offline: Vec<MachineId>,
    /// Membership events, sorted by time (ties resolved in vector order).
    pub events: Vec<ChurnEvent>,
    /// Optional pre-announcements of drains/failures, sorted by time.
    /// Empty in traces that model unannounced churn (the default; absent
    /// in serialized traces from before notices existed).
    #[serde(default)]
    pub notices: Vec<DepartureNotice>,
}

impl ChurnTrace {
    /// An empty trace: the static-cluster behavior.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the trace changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.initially_offline.is_empty() && self.events.is_empty() && self.notices.is_empty()
    }

    /// Validates the trace against a cluster of `num_machines` machines.
    ///
    /// # Panics
    ///
    /// Panics when a machine id is out of range or events are not sorted
    /// by time.
    pub fn validate(&self, num_machines: usize) {
        for m in &self.initially_offline {
            assert!(m.index() < num_machines, "initially-offline machine {m} out of range");
        }
        for w in self.events.windows(2) {
            assert!(w[0].time <= w[1].time, "churn events must be time-sorted");
        }
        for e in &self.events {
            assert!(
                e.machine.index() < num_machines,
                "churn event machine {} out of range",
                e.machine
            );
        }
        for w in self.notices.windows(2) {
            assert!(w[0].time <= w[1].time, "departure notices must be time-sorted");
        }
        for n in &self.notices {
            assert!(n.machine.index() < num_machines, "notice machine {} out of range", n.machine);
            assert!(n.time <= n.departs_at, "a notice cannot postdate the departure it announces");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_static() {
        let t = ChurnTrace::none();
        assert!(t.is_empty());
        t.validate(0);
    }

    #[test]
    fn validate_accepts_sorted_in_range() {
        let t = ChurnTrace {
            initially_offline: vec![MachineId(3)],
            events: vec![
                ChurnEvent { time: 10, machine: MachineId(3), kind: ChurnKind::Join },
                ChurnEvent { time: 10, machine: MachineId(0), kind: ChurnKind::Drain },
                ChurnEvent { time: 25, machine: MachineId(1), kind: ChurnKind::Fail },
            ],
            notices: vec![],
        };
        assert!(!t.is_empty());
        t.validate(4);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn validate_rejects_unsorted() {
        ChurnTrace {
            initially_offline: vec![],
            events: vec![
                ChurnEvent { time: 25, machine: MachineId(1), kind: ChurnKind::Fail },
                ChurnEvent { time: 10, machine: MachineId(0), kind: ChurnKind::Join },
            ],
            notices: vec![],
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_out_of_range() {
        ChurnTrace { initially_offline: vec![MachineId(9)], events: vec![], notices: vec![] }
            .validate(4);
    }

    #[test]
    fn notice_validation() {
        let t = ChurnTrace {
            initially_offline: vec![],
            events: vec![ChurnEvent { time: 40, machine: MachineId(1), kind: ChurnKind::Fail }],
            notices: vec![DepartureNotice { time: 20, machine: MachineId(1), departs_at: 40 }],
        };
        assert!(!t.is_empty());
        t.validate(2);
    }

    #[test]
    #[should_panic(expected = "postdate")]
    fn notice_after_departure_rejected() {
        ChurnTrace {
            initially_offline: vec![],
            events: vec![],
            notices: vec![DepartureNotice { time: 50, machine: MachineId(0), departs_at: 40 }],
        }
        .validate(1);
    }

    #[test]
    fn kinds_render() {
        assert_eq!(ChurnKind::Join.to_string(), "join");
        assert_eq!(ChurnKind::Drain.to_string(), "drain");
        assert_eq!(ChurnKind::Fail.to_string(), "fail");
    }
}
