//! The PET matrix and its matching ground-truth distributions.
//!
//! §III: "the execution time PMF of different task types on different
//! machine types are maintained in a matrix called a Probabilistic
//! Execution Time (PET)… In practice, the PMFs of the PET matrix can be
//! built from historic execution time information of each task type on
//! each machine type and modeling them via a histogram in an offline
//! manner."
//!
//! §VI-A describes the exact pipeline this module implements: for each
//! (task type, machine) pair take a mean execution time, draw a gamma
//! *shape* uniformly from `[1, 20]`, sample 500 execution times from the
//! resulting gamma distribution, and bin them into a histogram → PMF.
//!
//! [`GroundTruth`] keeps the gamma distributions themselves so the
//! simulator can draw *actual* execution times from the same law the PET
//! summarizes — the PET is the scheduler's belief, the ground truth is the
//! world.

use crate::{MachineId, TaskTypeId};
use hcsim_pmf::Pmf;
use hcsim_stats::{Gamma, Histogram};
use serde::{Deserialize, Serialize};

/// The Probabilistic Execution Time matrix: one execution-time [`Pmf`] per
/// (task type, machine) pair, plus cached expected values for the scalar
/// heuristics (MM/MSD/MMU never need the full PMF).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PetMatrix {
    task_types: usize,
    machines: usize,
    /// Row-major: `pmfs[tt * machines + m]`.
    pmfs: Vec<Pmf>,
    /// Cached means, same layout.
    means: Vec<f64>,
}

impl PetMatrix {
    /// Builds a PET matrix from explicit per-cell PMFs (row-major by task
    /// type).
    ///
    /// # Panics
    ///
    /// Panics unless `pmfs.len() == task_types * machines` and both
    /// dimensions are non-zero.
    #[must_use]
    pub fn from_pmfs(task_types: usize, machines: usize, pmfs: Vec<Pmf>) -> Self {
        assert!(task_types > 0 && machines > 0, "PET dimensions must be non-zero");
        assert_eq!(pmfs.len(), task_types * machines, "PET cell count mismatch");
        let means = pmfs.iter().map(Pmf::mean).collect();
        Self { task_types, machines, pmfs, means }
    }

    /// Number of task types (rows).
    #[must_use]
    pub fn task_types(&self) -> usize {
        self.task_types
    }

    /// Number of machines (columns).
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    #[inline]
    fn cell(&self, tt: TaskTypeId, m: MachineId) -> usize {
        debug_assert!(tt.index() < self.task_types && m.index() < self.machines);
        tt.index() * self.machines + m.index()
    }

    /// Execution-time PMF of `tt` on machine `m`.
    #[must_use]
    pub fn pmf(&self, tt: TaskTypeId, m: MachineId) -> &Pmf {
        &self.pmfs[self.cell(tt, m)]
    }

    /// Cached expected execution time of `tt` on machine `m`.
    #[must_use]
    pub fn mean_exec(&self, tt: TaskTypeId, m: MachineId) -> f64 {
        self.means[self.cell(tt, m)]
    }

    /// Mean execution time of task type `tt` averaged over machines.
    ///
    /// The workload generator's deadline formula (§VI-B) uses this as
    /// `avg_i`.
    #[must_use]
    pub fn mean_exec_over_machines(&self, tt: TaskTypeId) -> f64 {
        let row = &self.means[tt.index() * self.machines..(tt.index() + 1) * self.machines];
        row.iter().sum::<f64>() / self.machines as f64
    }

    /// Grand mean execution time over every (task type, machine) pair —
    /// `avg_all` in the deadline formula.
    #[must_use]
    pub fn grand_mean_exec(&self) -> f64 {
        self.means.iter().sum::<f64>() / self.means.len() as f64
    }

    /// The machine with the smallest expected execution time for `tt`.
    #[must_use]
    pub fn fastest_machine(&self, tt: TaskTypeId) -> MachineId {
        let row = &self.means[tt.index() * self.machines..(tt.index() + 1) * self.machines];
        let (idx, _) = row
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("means are finite"))
            .expect("at least one machine");
        MachineId::from(idx)
    }
}

/// Ground-truth execution-time distributions: the gamma law per (task
/// type, machine) cell that the PET histograms were sampled from, used by
/// the simulator to draw actual execution times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    task_types: usize,
    machines: usize,
    /// Row-major `(mean, shape)` parameters.
    params: Vec<(f64, f64)>,
}

impl GroundTruth {
    /// Builds ground truth from per-cell `(mean, shape)` gamma parameters
    /// (row-major by task type).
    ///
    /// # Panics
    ///
    /// Panics unless `params.len() == task_types * machines`.
    #[must_use]
    pub fn from_params(task_types: usize, machines: usize, params: Vec<(f64, f64)>) -> Self {
        assert!(task_types > 0 && machines > 0, "dimensions must be non-zero");
        assert_eq!(params.len(), task_types * machines, "cell count mismatch");
        for &(mean, shape) in &params {
            assert!(mean > 0.0 && shape > 0.0, "gamma parameters must be positive");
        }
        Self { task_types, machines, params }
    }

    /// Number of task types (rows).
    #[must_use]
    pub fn task_types(&self) -> usize {
        self.task_types
    }

    /// Number of machines (columns).
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// `(mean, shape)` of the cell.
    #[must_use]
    pub fn params(&self, tt: TaskTypeId, m: MachineId) -> (f64, f64) {
        self.params[tt.index() * self.machines + m.index()]
    }

    /// True mean execution time of `tt` averaged over machines — `avg_i`
    /// in the §VI-B deadline formula.
    #[must_use]
    pub fn mean_over_machines(&self, tt: TaskTypeId) -> f64 {
        let row = &self.params[tt.index() * self.machines..(tt.index() + 1) * self.machines];
        row.iter().map(|(mean, _)| mean).sum::<f64>() / self.machines as f64
    }

    /// True grand mean execution time over all cells — `avg_all` in the
    /// §VI-B deadline formula.
    #[must_use]
    pub fn grand_mean(&self) -> f64 {
        self.params.iter().map(|(mean, _)| mean).sum::<f64>() / self.params.len() as f64
    }

    /// Draws one actual execution time for `tt` on `m`, quantized to the
    /// time grid and clamped below at 1 (a zero-length execution would let
    /// tasks complete instantaneously, which the model excludes).
    pub fn sample_exec<R: rand::Rng>(&self, tt: TaskTypeId, m: MachineId, rng: &mut R) -> u64 {
        let (mean, shape) = self.params(tt, m);
        let gamma = Gamma::from_mean_shape(mean, shape).expect("validated at construction");
        (gamma.sample(rng).round() as u64).max(1)
    }
}

/// Builds a [`PetMatrix`] and its [`GroundTruth`] with the §VI-A pipeline.
#[derive(Debug, Clone)]
pub struct PetBuilder {
    samples_per_cell: usize,
    histogram_bins: usize,
    shape_range: (f64, f64),
    max_impulses: usize,
    model_error_frac: f64,
}

impl Default for PetBuilder {
    fn default() -> Self {
        Self {
            // §VI-A: "500 execution times were sampled".
            samples_per_cell: 500,
            histogram_bins: 32,
            // §VI-A: "a shape randomly picked from the range [1:20]".
            shape_range: (1.0, 20.0),
            max_impulses: 32,
            model_error_frac: 0.0,
        }
    }
}

impl PetBuilder {
    /// Creates a builder with the paper's defaults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gamma samples drawn per PET cell (paper: 500).
    #[must_use]
    pub fn samples_per_cell(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.samples_per_cell = n;
        self
    }

    /// Histogram bin count per cell.
    #[must_use]
    pub fn histogram_bins(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.histogram_bins = n;
        self
    }

    /// Range the per-cell gamma shape is drawn from (paper: `[1, 20]`).
    #[must_use]
    pub fn shape_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi >= lo);
        self.shape_range = (lo, hi);
        self
    }

    /// Impulse budget each PET PMF is compacted to.
    #[must_use]
    pub fn max_impulses(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.max_impulses = n;
        self
    }

    /// Injects *model error*: the PET is built around per-cell means
    /// perturbed by a uniform factor in `[1−f, 1+f]`, while the ground
    /// truth keeps the true means. The paper assumes a perfectly
    /// calibrated PET ("we assume that such a PET matrix is available");
    /// this knob measures how much of the pruning advantage survives a
    /// miscalibrated model (see the ablation harness).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= f < 1`.
    #[must_use]
    pub fn model_error(mut self, f: f64) -> Self {
        assert!((0.0..1.0).contains(&f), "model error fraction in [0, 1)");
        self.model_error_frac = f;
        self
    }

    /// Builds `(pet, truth)` from a row-major matrix of mean execution
    /// times (`means[tt][m]`).
    ///
    /// # Panics
    ///
    /// Panics if `means` is empty, ragged, or contains non-positive means.
    pub fn build<R: rand::Rng>(&self, means: &[Vec<f64>], rng: &mut R) -> (PetMatrix, GroundTruth) {
        assert!(!means.is_empty(), "at least one task type required");
        let machines = means[0].len();
        assert!(machines > 0, "at least one machine required");
        let task_types = means.len();

        let mut pmfs = Vec::with_capacity(task_types * machines);
        let mut params = Vec::with_capacity(task_types * machines);
        let mut samples = vec![0.0f64; self.samples_per_cell];

        for row in means {
            assert_eq!(row.len(), machines, "ragged mean matrix");
            for &mean in row {
                assert!(mean > 0.0, "mean execution times must be positive");
                let (lo, hi) = self.shape_range;
                let shape = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                // Ground truth always uses the true mean; the PET sees a
                // possibly-perturbed one (scheduler model error).
                let believed_mean = if self.model_error_frac > 0.0 {
                    let f = self.model_error_frac;
                    mean * (1.0 + rng.gen_range(-f..f))
                } else {
                    mean
                };
                let gamma = Gamma::from_mean_shape(believed_mean, shape).expect("positive params");
                for s in &mut samples {
                    *s = gamma.sample(rng);
                }
                let hist = Histogram::from_samples(&samples, self.histogram_bins);
                let mut pmf = Pmf::from_histogram(&hist);
                pmf.compact(self.max_impulses);
                pmfs.push(pmf);
                params.push((mean, shape));
            }
        }

        (
            PetMatrix::from_pmfs(task_types, machines, pmfs),
            GroundTruth::from_params(task_types, machines, params),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsim_stats::SeedSequence;

    fn small_means() -> Vec<Vec<f64>> {
        vec![vec![50.0, 100.0, 150.0], vec![120.0, 60.0, 90.0]]
    }

    fn build_small() -> (PetMatrix, GroundTruth) {
        let mut rng = SeedSequence::new(1).stream(0);
        PetBuilder::new().build(&small_means(), &mut rng)
    }

    #[test]
    fn dimensions_and_layout() {
        let (pet, truth) = build_small();
        assert_eq!(pet.task_types(), 2);
        assert_eq!(pet.machines(), 3);
        assert_eq!(truth.task_types(), 2);
        assert_eq!(truth.machines(), 3);
    }

    #[test]
    fn pet_pmfs_are_normalized_and_bounded() {
        let (pet, _) = build_small();
        for tt in 0..2usize {
            for m in 0..3usize {
                let pmf = pet.pmf(TaskTypeId::from(tt), MachineId::from(m));
                assert!(pmf.is_normalized(), "cell ({tt},{m}) mass {}", pmf.mass());
                assert!(pmf.len() <= 32);
                assert!(pmf.min_time() >= 1);
            }
        }
    }

    #[test]
    fn pet_means_track_requested_means() {
        let (pet, _) = build_small();
        let means = small_means();
        for (tt, row) in means.iter().enumerate() {
            for (m, &want) in row.iter().enumerate() {
                let got = pet.mean_exec(TaskTypeId::from(tt), MachineId::from(m));
                assert!(
                    (got - want).abs() / want < 0.15,
                    "cell ({tt},{m}): PET mean {got} vs requested {want}"
                );
            }
        }
    }

    #[test]
    fn row_and_grand_means() {
        let (pet, _) = build_small();
        let row0 = pet.mean_exec_over_machines(TaskTypeId(0));
        let want0 = (pet.mean_exec(TaskTypeId(0), MachineId(0))
            + pet.mean_exec(TaskTypeId(0), MachineId(1))
            + pet.mean_exec(TaskTypeId(0), MachineId(2)))
            / 3.0;
        assert!((row0 - want0).abs() < 1e-9);
        let grand = pet.grand_mean_exec();
        let all: f64 = (0..2usize)
            .flat_map(|tt| (0..3usize).map(move |m| (tt, m)))
            .map(|(tt, m)| pet.mean_exec(TaskTypeId::from(tt), MachineId::from(m)))
            .sum::<f64>()
            / 6.0;
        assert!((grand - all).abs() < 1e-9);
    }

    #[test]
    fn fastest_machine_matches_means() {
        let (pet, _) = build_small();
        for tt in 0..2u16 {
            let fastest = pet.fastest_machine(TaskTypeId(tt));
            let fastest_mean = pet.mean_exec(TaskTypeId(tt), fastest);
            for m in 0..3usize {
                assert!(fastest_mean <= pet.mean_exec(TaskTypeId(tt), MachineId::from(m)) + 1e-12);
            }
        }
    }

    #[test]
    fn ground_truth_sampling_matches_mean() {
        let (_, truth) = build_small();
        let mut rng = SeedSequence::new(2).stream(0);
        let n = 20_000;
        let tt = TaskTypeId(1);
        let m = MachineId(1);
        let (mean, _) = truth.params(tt, m);
        let avg: f64 =
            (0..n).map(|_| truth.sample_exec(tt, m, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((avg - mean).abs() / mean < 0.05, "sampled mean {avg} vs {mean}");
    }

    #[test]
    fn ground_truth_samples_at_least_one() {
        let truth = GroundTruth::from_params(1, 1, vec![(0.4, 1.0)]);
        let mut rng = SeedSequence::new(3).stream(0);
        for _ in 0..100 {
            assert!(truth.sample_exec(TaskTypeId(0), MachineId(0), &mut rng) >= 1);
        }
    }

    #[test]
    fn builder_determinism() {
        let mut rng1 = SeedSequence::new(9).stream(0);
        let mut rng2 = SeedSequence::new(9).stream(0);
        let (pet1, truth1) = PetBuilder::new().build(&small_means(), &mut rng1);
        let (pet2, truth2) = PetBuilder::new().build(&small_means(), &mut rng2);
        assert_eq!(pet1, pet2);
        assert_eq!(truth1, truth2);
    }

    #[test]
    fn builder_respects_impulse_budget() {
        let mut rng = SeedSequence::new(4).stream(0);
        let (pet, _) = PetBuilder::new().max_impulses(8).build(&small_means(), &mut rng);
        for tt in 0..2usize {
            for m in 0..3usize {
                assert!(pet.pmf(TaskTypeId::from(tt), MachineId::from(m)).len() <= 8);
            }
        }
    }

    #[test]
    fn fixed_shape_range_is_allowed() {
        let mut rng = SeedSequence::new(5).stream(0);
        let (_, truth) = PetBuilder::new().shape_range(4.0, 4.0).build(&small_means(), &mut rng);
        for tt in 0..2usize {
            for m in 0..3usize {
                let (_, shape) = truth.params(TaskTypeId::from(tt), MachineId::from(m));
                assert_eq!(shape, 4.0);
            }
        }
    }

    #[test]
    fn model_error_perturbs_pet_but_not_truth() {
        let mut rng = SeedSequence::new(21).stream(0);
        let (pet, truth) = PetBuilder::new()
            .model_error(0.5)
            .shape_range(20.0, 20.0)
            .build(&small_means(), &mut rng);
        let means = small_means();
        let mut max_rel_error = 0.0f64;
        for (tt, row) in means.iter().enumerate() {
            for (m, &want) in row.iter().enumerate() {
                let (truth_mean, _) = truth.params(TaskTypeId::from(tt), MachineId::from(m));
                assert_eq!(truth_mean, want, "ground truth must keep the true mean");
                let got = pet.mean_exec(TaskTypeId::from(tt), MachineId::from(m));
                max_rel_error = max_rel_error.max((got - want).abs() / want);
            }
        }
        assert!(max_rel_error > 0.1, "50% model error should visibly move PET means");
    }

    #[test]
    fn zero_model_error_is_default() {
        let mut a = SeedSequence::new(22).stream(0);
        let mut b = SeedSequence::new(22).stream(0);
        let built_default = PetBuilder::new().build(&small_means(), &mut a);
        let built_zero = PetBuilder::new().model_error(0.0).build(&small_means(), &mut b);
        assert_eq!(built_default, built_zero);
    }

    #[test]
    #[should_panic(expected = "model error")]
    fn model_error_range_checked() {
        let _ = PetBuilder::new().model_error(1.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_means_panic() {
        let mut rng = SeedSequence::new(6).stream(0);
        let _ = PetBuilder::new().build(&[vec![1.0, 2.0], vec![3.0]], &mut rng);
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn pet_cell_count_checked() {
        let _ = PetMatrix::from_pmfs(2, 2, vec![Pmf::delta(1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ground_truth_rejects_bad_params() {
        let _ = GroundTruth::from_params(1, 1, vec![(0.0, 1.0)]);
    }
}
