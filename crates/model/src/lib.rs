//! System model for the heterogeneous computing (HC) system of §III.
//!
//! The paper's system consists of:
//!
//! * a set of **inconsistently heterogeneous machines** — each machine can
//!   be faster than another for one task type and slower for a different
//!   one ([`MachineSpec`]);
//! * a set of **task types** whose execution time on each machine is a
//!   random variable ([`TaskTypeSpec`]);
//! * the **PET matrix** (Probabilistic Execution Time): one execution-time
//!   PMF per (task type, machine) pair, built offline from historical
//!   samples ([`PetMatrix`], [`PetBuilder`]);
//! * the matching **ground truth** distributions the simulator draws actual
//!   execution times from ([`GroundTruth`]) — the PET is the scheduler's
//!   *model* of the world, the ground truth *is* the world; keeping them
//!   separate lets experiments study model error;
//! * **tasks** with hard individual deadlines ([`Task`]);
//! * a cloud **price table** for the cost experiments of §VII-F
//!   ([`PriceTable`]);
//! * **cluster-membership timelines** ([`ChurnTrace`]) — machines joining,
//!   draining, and failing mid-run, the dynamic-resource extension the
//!   simulator replays alongside the task trace;
//! * an optional **cold-start model** ([`ColdStartModel`]) — container
//!   spin-up PMFs plus a keep-alive window, turning the system into the
//!   serverless (FaaS) shape of the sequel paper (arXiv:1905.04456).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod coldstart;
mod cost;
mod ids;
mod pet;
mod spec;
mod task;

pub use churn::{ChurnEvent, ChurnKind, ChurnTrace, DepartureNotice};
pub use coldstart::ColdStartModel;
pub use cost::{CostTracker, PriceTable};
pub use ids::{MachineId, TaskId, TaskTypeId};
pub use pet::{GroundTruth, PetBuilder, PetMatrix};
pub use spec::{MachineSpec, SystemSpec, TaskTypeSpec};
pub use task::{Task, TaskOutcome, TaskRecord};

/// Re-export of the simulation time type.
pub type Time = hcsim_pmf::Time;
