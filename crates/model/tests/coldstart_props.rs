//! Property tests for the serverless cold-start calculus.
//!
//! The cold completion PMF of a (function, machine) cell is defined as
//! `spinup ⊛ exec` ([`ColdStartModel::cold_cell`]). These properties pin
//! the relationship between the warm-hit and cold-start views of the same
//! cell over arbitrary discrete distributions:
//!
//! * **Mass conservation** — convolving the spin-up onto the execution
//!   PMF moves mass *later*, it never creates or destroys any: the cold
//!   PMF stays normalized and its mean is exactly the sum of the parts.
//! * **Delta spin-up is a pure shift** — when the spin-up is
//!   deterministic, the warm-hit PMF *is* the cold PMF with the spin-up
//!   mass removed (every impulse shifted back by the spin-up, masses
//!   untouched). This is the sharp form of "warm = cold minus spin-up"
//!   that the scorer's warm/cold cell selection relies on.
//! * **Compaction keeps the books** — the budgeted cold PET the scorer
//!   actually uses still carries unit mass and an unchanged mean
//!   (compaction merges impulses into their weighted mean, so only
//!   integer-time rounding moves the first moment).
//! * **Dominance** — a non-negative spin-up delay can only make things
//!   later: the uncompacted cold CDF is dominated by the warm CDF
//!   everywhere.

use hcsim_model::{ColdStartModel, GroundTruth, MachineId, PetMatrix, TaskTypeId};
use hcsim_pmf::{Pmf, Time};
use proptest::prelude::*;

/// A small arbitrary PMF: 1–9 impulses, normalized (duplicate times are
/// merged by [`Pmf::from_points`]).
fn arb_pmf(max_t: Time) -> impl Strategy<Value = Pmf> {
    collection::vec((1..max_t, 0.05f64..10.0), 1..10).prop_map(|points| {
        let mut pmf = Pmf::from_points(&points).expect("non-empty positive masses");
        pmf.normalize();
        pmf
    })
}

/// Wraps a single (spin-up, exec) pair as a 1×1 cold-start model; the
/// ground-truth side is irrelevant to the PMF calculus under test.
fn one_cell(spin: Pmf, exec: Pmf) -> (ColdStartModel, PetMatrix) {
    let model = ColdStartModel {
        spinup: PetMatrix::from_pmfs(1, 1, vec![spin]),
        truth: GroundTruth::from_params(1, 1, vec![(4.0, 8.0)]),
        keep_alive: 60,
    };
    (model, PetMatrix::from_pmfs(1, 1, vec![exec]))
}

proptest! {
    /// Uncompacted cold cell: unit mass in, unit mass out, and the mean
    /// is exactly warm + spin-up (convolution adds first moments).
    #[test]
    fn cold_cell_conserves_mass_and_adds_means(
        spin in arb_pmf(150),
        exec in arb_pmf(300),
    ) {
        let spin_mean = spin.mean();
        let exec_mean = exec.mean();
        let (model, warm) = one_cell(spin, exec);
        let cold = model.cold_cell(&warm, TaskTypeId(0), MachineId(0), 0);
        prop_assert!(cold.is_normalized(), "cold mass {}", cold.mass());
        let want = spin_mean + exec_mean;
        prop_assert!(
            (cold.mean() - want).abs() < 1e-6 * want.max(1.0),
            "cold mean {} vs warm {exec_mean} + spinup {spin_mean}",
            cold.mean()
        );
    }

    /// Deterministic spin-up: the cold PMF is the warm PMF shifted by the
    /// spin-up, impulse for impulse — so removing the spin-up mass from
    /// the cold PMF recovers the warm-hit PMF exactly.
    #[test]
    fn delta_spinup_is_a_pure_shift(
        d in 1u64..100,
        exec in arb_pmf(300),
    ) {
        let spin = Pmf::delta(d);
        let (model, warm) = one_cell(spin, exec);
        let cold = model.cold_cell(&warm, TaskTypeId(0), MachineId(0), 0);
        let w = warm.pmf(TaskTypeId(0), MachineId(0));
        prop_assert_eq!(cold.len(), w.len());
        for (i, (&ct, &wt)) in cold.times().iter().zip(w.times()).enumerate() {
            prop_assert_eq!(ct, wt + d, "impulse {i} time");
            prop_assert!(
                (cold.masses()[i] - w.masses()[i]).abs() < 1e-12,
                "impulse {i} mass {} vs {}",
                cold.masses()[i],
                w.masses()[i]
            );
        }
    }

    /// The budgeted cold cell (what [`ColdStartModel::cold_pet`] hands the
    /// scorer) still carries unit mass, respects the budget, and keeps
    /// the mean up to integer-time rounding of merged impulses.
    #[test]
    fn compacted_cold_cell_keeps_the_books(
        spin in arb_pmf(150),
        exec in arb_pmf(300),
    ) {
        let want = spin.mean() + exec.mean();
        let (model, warm) = one_cell(spin, exec);
        let cold = model.cold_cell(&warm, TaskTypeId(0), MachineId(0), 8);
        prop_assert!(cold.len() <= 8);
        prop_assert!(cold.is_normalized(), "cold mass {}", cold.mass());
        // Weighted-mean merging preserves the first moment exactly in
        // real arithmetic; representative times are integers, so allow
        // one time unit of rounding.
        prop_assert!(
            (cold.mean() - want).abs() <= 1.0,
            "compacted mean {} drifted from {want}",
            cold.mean()
        );
    }

    /// Spin-up is a non-negative delay: the cold CDF never exceeds the
    /// warm CDF (first-order stochastic dominance of warm over cold).
    #[test]
    fn cold_is_stochastically_dominated_by_warm(
        spin in arb_pmf(150),
        exec in arb_pmf(300),
    ) {
        let (model, warm) = one_cell(spin, exec);
        let cold = model.cold_cell(&warm, TaskTypeId(0), MachineId(0), 0);
        let w = warm.pmf(TaskTypeId(0), MachineId(0));
        for t in (0..500).step_by(9) {
            prop_assert!(
                cold.cdf_at(t) <= w.cdf_at(t) + 1e-12,
                "cold overtakes warm at t={t}"
            );
        }
    }
}
