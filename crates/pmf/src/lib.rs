//! Discrete impulse PMFs and the completion-time calculus of Gentry et al.
//!
//! This crate implements §IV of the paper ("Calculating Task Completion Time
//! in the Presence of Task Dropping"):
//!
//! * [`Pmf`] — a probability mass function as a sorted set of impulses
//!   `(t, p)` on the discrete simulation time grid.
//! * [`Pmf::cdf_at`] — Eq. 1: a task's probability of meeting its deadline
//!   (its *robustness*) is the CDF of its completion-time PMF at the
//!   deadline.
//! * [`convolve`] — Eq. 2: completion-time PMF of a task behind another task
//!   when dropping is not permitted.
//! * [`queue_step`] — Eq. 3–5: the same computation when pending tasks
//!   ([`DropPolicy::PendingOnly`]) or any task including the executing one
//!   ([`DropPolicy::All`]) may be dropped at its deadline.
//! * [`Pmf::bounded_skewness`] — Eq. 6 skewness, clamped to `[-1, 1]`,
//!   feeding the per-task drop-threshold adjustment (Eq. 7, implemented in
//!   `hcsim-core`).
//! * [`Pmf::compact`] — impulse aggregation, the approximation §IV suggests
//!   to keep the convolution overhead bounded.
//!
//! The worked examples of the paper's Figures 2 and 3 are encoded verbatim
//! as unit tests in [`convolve`] — reproducing them exactly pins down the
//! semantics of the convolution operators.
//!
//! # Example: Figure 2 of the paper
//!
//! ```
//! use hcsim_pmf::{Pmf, convolve};
//!
//! // PCT of the last task already in machine queue j.
//! let pct_prev = Pmf::from_points(&[(3, 0.25), (4, 0.50), (5, 0.25)]).unwrap();
//! // PET of arriving task i (deadline 7).
//! let pet = Pmf::from_points(&[(1, 0.50), (2, 0.25), (3, 0.25)]).unwrap();
//! let pct = convolve(&pct_prev, &pet);
//! assert!((pct.cdf_at(7) - 0.9375).abs() < 1e-12); // Eq. 1 robustness
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod convolve;
mod pmf;

pub use convolve::{
    convolve, convolve_into, queue_step, queue_step_into, ConvScratch, DropPolicy, QueueStep,
};
pub use pmf::{Impulse, Moments, Pmf, PmfError};

/// Discrete simulation time. One unit is interpreted as a millisecond by
/// the workload layer, but nothing in this crate depends on the unit.
pub type Time = u64;

/// Tolerance used when checking that probability masses sum to one.
pub const MASS_EPSILON: f64 = 1e-9;
