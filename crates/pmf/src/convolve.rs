//! Completion-time convolution under the paper's three dropping scenarios.
//!
//! §IV: given the availability PMF of a machine queue position (`PCT(i−1)`,
//! when the machine becomes free for task *i*) and the execution-time PMF
//! `PET(i)`, the completion time `PCT(i)` of task *i* is:
//!
//! * **Eq. 2** — [`DropPolicy::None`]: plain convolution; every mapped task
//!   runs to completion.
//! * **Eq. 3–4** — [`DropPolicy::PendingOnly`]: starts at or after the
//!   deadline δᵢ are impossible (the pending task is dropped once its
//!   deadline passes), so impulses of `PCT(i−1)` at `t >= δᵢ` are excluded
//!   from the convolution and added back verbatim as *carry-over*: the
//!   machine frees up when task i−1 finishes and task i vanishes.
//! * **Eq. 5** — [`DropPolicy::All`]: additionally, a task still executing
//!   at δᵢ is evicted, so all of task i's own completion mass after δᵢ is
//!   aggregated onto the impulse at δᵢ (the machine is guaranteed free by
//!   then); carry-over mass is unaffected.
//!
//! A task's **robustness** (Eq. 1) is the probability it completes by its
//! deadline: the CDF of its *own* completion mass at δᵢ — carry-over mass
//! (the machine freeing up because the task was dropped) never counts as
//! success. [`queue_step`] returns both quantities separately so callers
//! cannot conflate them.
//!
//! # Allocation discipline
//!
//! The mapping loop performs one [`queue_step`] per (task, machine)
//! evaluation, so the `*_into` variants take a [`ConvScratch`] that owns
//! every intermediate buffer *and* a free-list of retired [`Pmf`] storage:
//! output PMFs draw their columns from the pool, and callers hand finished
//! PMFs back via [`ConvScratch::recycle`]. In steady state (pool warm,
//! capacities grown to the workload's impulse budget) a `queue_step_into`
//! call performs zero heap allocation.

use crate::pmf::{merge_add, merge_sorted_pairs, Impulse, Pmf};
use crate::Time;
use serde::{Deserialize, Serialize};

/// Which tasks may be dropped when their deadline passes (§IV scenarios
/// A/B/C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DropPolicy {
    /// Scenario A: no dropping; all mapped tasks execute to completion.
    None,
    /// Scenario B: pending (not yet executing) tasks are dropped at their
    /// deadline.
    PendingOnly,
    /// Scenario C: any task, including the executing one, is dropped
    /// (evicted) at its deadline. This is the mode the paper's pruning
    /// mechanism operates in.
    #[default]
    All,
}

/// Reusable scratch for the convolution calculus: pairing/merge buffers
/// plus a free-list of retired PMF storage, keeping the hot mapping loop
/// allocation-free including its outputs.
#[derive(Debug, Default)]
pub struct ConvScratch {
    /// Convolution accumulation buffer (sorted then merged in place).
    pairs: Vec<Impulse>,
    /// Auxiliary buffer for the radix sort's stable scatter passes.
    radix: Vec<Impulse>,
    /// Dense accumulator for narrow-range convolutions (mass per rebased
    /// time slot).
    acc: Vec<f64>,
    /// Epoch stamps marking which `acc` slots the current convolution
    /// touched — avoids clearing the whole accumulator per call and
    /// distinguishes "slot holds 0.0 mass" from "slot untouched".
    stamp: Vec<u32>,
    /// Current epoch for `stamp`.
    epoch: u32,
    /// Retired PMF storage, reused for outputs.
    pool: Vec<(Vec<Time>, Vec<f64>)>,
}

/// Rebased time-range ceiling for the dense-accumulator convolution path.
const DENSE_RANGE: u64 = 2048;

impl ConvScratch {
    /// Creates an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch buffer with pre-reserved capacity for the pairing
    /// buffer (≈ the product of typical input impulse counts).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self { pairs: Vec::with_capacity(cap), ..Self::default() }
    }

    /// Returns a finished PMF's storage to the pool for reuse by later
    /// outputs. Dropping a PMF instead of recycling it is always correct —
    /// the pool is purely an allocation saver.
    pub fn recycle(&mut self, pmf: Pmf) {
        if self.pool.len() < 64 {
            self.pool.push(pmf.into_parts());
        }
    }

    /// Number of pooled storage pairs currently available (observability
    /// for tests).
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Takes storage from the pool (or allocates) with both columns empty.
    pub(crate) fn take_storage(&mut self) -> (Vec<Time>, Vec<f64>) {
        match self.pool.pop() {
            Some((mut t, mut m)) => {
                t.clear();
                m.clear();
                (t, m)
            }
            None => (Vec::new(), Vec::new()),
        }
    }

    /// Builds a pooled PMF from the sorted, merged pairing buffer. Two
    /// column-wise passes (exact-size iterators → one reserve + dense
    /// copy loop each) instead of interleaved per-element pushes.
    fn pmf_from_pairs(&mut self) -> Pmf {
        let (mut times, mut masses) = self.take_storage();
        times.extend(self.pairs.iter().map(|i| i.t));
        masses.extend(self.pairs.iter().map(|i| i.p));
        Pmf::from_parts_unchecked(times, masses)
    }

    /// Dense-accumulator convolution for narrow rebased time ranges: every
    /// product mass lands directly in its output slot, so sorting, the
    /// duplicate merge, and the column copy all disappear. Equal-time
    /// masses accumulate in row-major `(availability, execution)` order —
    /// exactly the order the stable radix sort presents them to the merge
    /// — so the result is bit-identical to the sort-and-merge path.
    fn dense_convolve(
        &mut self,
        a: (&[Time], &[f64]),
        b: (&[Time], &[f64]),
        min: Time,
        range: u64,
    ) -> Pmf {
        let width = range as usize + 1;
        if self.acc.len() < DENSE_RANGE as usize {
            self.acc.resize(DENSE_RANGE as usize, 0.0);
            self.stamp.resize(DENSE_RANGE as usize, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        {
            let acc = &mut self.acc[..width];
            let stamp = &mut self.stamp[..width];
            let (at, am) = a;
            let (bt, bm) = b;
            // `min = at[0] + bt[0]`, so the rebased slot splits into two
            // non-negative offsets.
            let (a0, b0) = (at[0], bt[0]);
            for (&ta, &pa) in at.iter().zip(am) {
                let base = ta - a0;
                for (&tb, &pb) in bt.iter().zip(bm) {
                    let slot = (base + (tb - b0)) as usize;
                    let mass = pa * pb;
                    if stamp[slot] == epoch {
                        acc[slot] += mass;
                    } else {
                        stamp[slot] = epoch;
                        acc[slot] = mass;
                    }
                }
            }
        }
        let (mut times, mut masses) = self.take_storage();
        for (slot, (&mark, &mass)) in self.stamp[..width].iter().zip(&self.acc[..width]).enumerate()
        {
            if mark == epoch {
                times.push(min + slot as u64);
                masses.push(mass);
            }
        }
        Pmf::from_parts_unchecked(times, masses)
    }

    /// Builds a pooled PMF copying the given columns.
    fn pmf_from_slices(&mut self, src_times: &[Time], src_masses: &[f64]) -> Pmf {
        let (mut times, mut masses) = self.take_storage();
        times.extend_from_slice(src_times);
        masses.extend_from_slice(src_masses);
        Pmf::from_parts_unchecked(times, masses)
    }
}

/// Plain convolution (Eq. 2): the distribution of `A + B` for independent
/// `A ~ a`, `B ~ b`. Masses multiply, so `mass(out) = mass(a) · mass(b)`.
///
/// This is the whole completion-time calculus in one operator: queue
/// chains convolve availability with execution, and the serverless
/// cold-start cell convolves spin-up with execution. Means add exactly:
///
/// ```
/// use hcsim_pmf::{convolve, Pmf};
///
/// let spinup = Pmf::from_points(&[(10, 0.5), (20, 0.5)]).unwrap();
/// let exec = Pmf::from_points(&[(3, 0.25), (5, 0.75)]).unwrap();
/// let cold = convolve(&spinup, &exec);
/// assert_eq!(cold.min_time(), 13); // earliest spin-up + earliest exec
/// assert!((cold.mean() - (spinup.mean() + exec.mean())).abs() < 1e-12);
/// assert!(cold.is_normalized());
/// ```
#[must_use]
pub fn convolve(a: &Pmf, b: &Pmf) -> Pmf {
    let mut scratch = ConvScratch::with_capacity(a.len() * b.len());
    convolve_into(a, b, &mut scratch)
}

/// [`convolve`] with a caller-provided scratch buffer; the output PMF draws
/// its storage from the scratch pool.
pub fn convolve_into(a: &Pmf, b: &Pmf, scratch: &mut ConvScratch) -> Pmf {
    convolve_slices((a.times(), a.masses()), b, scratch)
}

/// Convolves an availability *prefix* (the Eq. 3 startable slice) with an
/// execution PMF without materializing the prefix as a PMF.
///
/// The pair-generation loop is ~30% of a `queue_step`, so it is written
/// as a 4-wide manually unrolled row fill over a pre-sized buffer: each
/// output row is `(ta + bt[j], pa * bm[j])` — a pure element-wise
/// shift/scale with no loop-carried accumulation, which the compiler
/// turns into vector adds/muls and which emits pairs in exactly the same
/// row-major order as the naive nested push loop (the stable radix sort
/// and the duplicate merge downstream depend on that order).
fn convolve_slices(a: (&[Time], &[f64]), b: &Pmf, scratch: &mut ConvScratch) -> Pmf {
    let (at, am) = a;
    let (bt, bm) = (b.times(), b.masses());
    // Both inputs are sorted, so the output extrema — and therefore the
    // rebased range — are known without materializing a single pair.
    let pairs = at.len() * bt.len();
    let range = (at[at.len() - 1] + bt[bt.len() - 1]) - (at[0] + bt[0]);
    if pairs > 32 && range < DENSE_RANGE && range <= 4 * pairs as u64 {
        return scratch.dense_convolve((at, am), (bt, bm), at[0] + bt[0], range);
    }
    let (buf, aux) = (&mut scratch.pairs, &mut scratch.radix);
    buf.clear();
    buf.resize(at.len() * bt.len(), Impulse { t: 0, p: 0.0 });
    for ((&ta, &pa), row) in at.iter().zip(am).zip(buf.chunks_exact_mut(bt.len())) {
        let mut out4 = row.chunks_exact_mut(4);
        let mut bt4 = bt.chunks_exact(4);
        let mut bm4 = bm.chunks_exact(4);
        for ((out, ct), cm) in (&mut out4).zip(&mut bt4).zip(&mut bm4) {
            out[0] = Impulse { t: ta + ct[0], p: pa * cm[0] };
            out[1] = Impulse { t: ta + ct[1], p: pa * cm[1] };
            out[2] = Impulse { t: ta + ct[2], p: pa * cm[2] };
            out[3] = Impulse { t: ta + ct[3], p: pa * cm[3] };
        }
        for ((out, &tb), &pb) in
            out4.into_remainder().iter_mut().zip(bt4.remainder()).zip(bm4.remainder())
        {
            *out = Impulse { t: ta + tb, p: pa * pb };
        }
    }
    radix_sort_by_time(buf, aux);
    merge_sorted_pairs(buf);
    scratch.pmf_from_pairs()
}

/// Stable LSB-radix sort of impulse pairs by time, over only the digits
/// the (rebased) key range actually needs. For the mapping loop's pair
/// buffers (hundreds of entries, time ranges in the thousands) this runs
/// in a single 11-bit pass — or 1–2 byte passes for wider ranges — where
/// a comparison sort pays `n log n` branchy compares; the single hottest
/// win in the whole pipeline.
///
/// Stability makes the order of equal times *defined* (input order, i.e.
/// lexicographic in the convolution's (availability, execution) indices)
/// rather than whatever an unstable comparison sort leaves; downstream
/// duplicate-merging sums masses in exactly that order. Digit-width
/// selection never changes the output (any stable sort of the same keys
/// yields the same permutation), only the pass count.
fn radix_sort_by_time(buf: &mut Vec<Impulse>, aux: &mut Vec<Impulse>) {
    let n = buf.len();
    if n < 2 {
        return;
    }
    // Tiny buffers: insertion sort (stable) beats histogramming.
    if n <= 32 {
        for i in 1..n {
            let x = buf[i];
            let mut j = i;
            while j > 0 && buf[j - 1].t > x.t {
                buf[j] = buf[j - 1];
                j -= 1;
            }
            buf[j] = x;
        }
        return;
    }
    let min = buf.iter().map(|i| i.t).min().expect("non-empty");
    let max = buf.iter().map(|i| i.t).max().expect("non-empty");
    let range = max - min;
    if range == 0 {
        return; // all keys equal: already "sorted", order untouched
    }
    aux.clear();
    aux.resize(n, Impulse { t: 0, p: 0.0 });
    // Queue-step pair buffers almost always span < 2048 time units (a
    // compacted availability plus one execution PMF): one 11-bit counting
    // pass (16 KiB of counts, L1-resident) replaces two byte passes.
    if range < 2048 {
        let mut counts = [0usize; 2048];
        for imp in buf.iter() {
            counts[(imp.t - min) as usize] += 1;
        }
        let mut acc = 0usize;
        for c in counts.iter_mut().take(range as usize + 1) {
            let start = acc;
            acc += *c;
            *c = start;
        }
        for imp in buf.iter() {
            let bucket = (imp.t - min) as usize;
            aux[counts[bucket]] = *imp;
            counts[bucket] += 1;
        }
        std::mem::swap(buf, aux);
        return;
    }
    let bytes = (8 - (range.leading_zeros() / 8) as usize).max(1);
    let mut counts = [0usize; 256];
    for pass in 0..bytes {
        let shift = pass * 8;
        counts.fill(0);
        for imp in buf.iter() {
            counts[(((imp.t - min) >> shift) & 0xff) as usize] += 1;
        }
        let mut acc = 0usize;
        for c in &mut counts {
            let start = acc;
            acc += *c;
            *c = start;
        }
        for imp in buf.iter() {
            let bucket = (((imp.t - min) >> shift) & 0xff) as usize;
            aux[counts[bucket]] = *imp;
            counts[bucket] += 1;
        }
        std::mem::swap(buf, aux);
    }
}

/// Result of appending one task behind a machine-queue position.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueStep {
    /// The task's own completion-time mass. `None` when the task can never
    /// start before its deadline (all availability mass lies at `t >= δ`).
    /// Under [`DropPolicy::None`] this is the full Eq. 2 convolution; under
    /// B/C it is the deadline-truncated convolution of Eq. 3–4 and is
    /// generally sub-normalized.
    pub completion: Option<Pmf>,
    /// When the machine becomes free *after* this queue position — the PMF
    /// to chain into the next task's [`queue_step`]. Includes carry-over
    /// mass under B/C, and the Eq. 5 deadline aggregation under C.
    pub availability: Pmf,
    /// Eq. 1 robustness: probability the task completes at or before its
    /// deadline.
    pub robustness: f64,
}

impl QueueStep {
    /// Returns this step's PMFs to `scratch`'s pool once the caller has
    /// extracted what it needs.
    pub fn recycle_into(self, scratch: &mut ConvScratch) {
        if let Some(c) = self.completion {
            scratch.recycle(c);
        }
        scratch.recycle(self.availability);
    }
}

/// Computes completion and availability PMFs for a task with execution PMF
/// `exec` and deadline `deadline`, queued behind availability `avail`,
/// under the given [`DropPolicy`].
///
/// Execution times of zero are legal but make scenario A's robustness
/// differ from B/C's (a task could "start" exactly at its deadline and
/// still finish); the workload layer never produces them.
#[must_use]
pub fn queue_step(avail: &Pmf, exec: &Pmf, deadline: Time, policy: DropPolicy) -> QueueStep {
    let mut scratch = ConvScratch::new();
    queue_step_into(avail, exec, deadline, policy, &mut scratch)
}

/// [`queue_step`] with a caller-provided scratch buffer. Output PMFs draw
/// their storage from the scratch pool; recycle them when done.
pub fn queue_step_into(
    avail: &Pmf,
    exec: &Pmf,
    deadline: Time,
    policy: DropPolicy,
    scratch: &mut ConvScratch,
) -> QueueStep {
    match policy {
        DropPolicy::None => {
            let completion = convolve_into(avail, exec, scratch);
            let robustness = completion.cdf_at(deadline);
            let availability = scratch.pmf_from_slices(completion.times(), completion.masses());
            QueueStep { availability, completion: Some(completion), robustness }
        }
        DropPolicy::PendingOnly | DropPolicy::All => {
            // Eq. 3: only starts strictly before δ are possible.
            let split = avail.partition_index(deadline);
            let (carry_times, carry_masses) = (&avail.times()[split..], &avail.masses()[split..]);
            if split == 0 {
                // The task can never start: availability is the carry-over
                // verbatim (a non-empty PMF has a non-empty late side here).
                let availability = scratch.pmf_from_slices(carry_times, carry_masses);
                return QueueStep { completion: None, availability, robustness: 0.0 };
            }
            let completion =
                convolve_slices((&avail.times()[..split], &avail.masses()[..split]), exec, scratch);
            let robustness = completion.cdf_at(deadline);
            let availability = if policy == DropPolicy::All {
                // Eq. 5 + Eq. 4 fused in one pass: the task's own mass
                // past δ aggregates onto the impulse at δ (eviction), and
                // the carry-over — whose support is entirely `>= δ` by
                // construction — appends after it, summing on a shared
                // boundary impulse. Operation order matches the unfused
                // clamp-then-superpose exactly.
                let (mut times, mut masses) = scratch.take_storage();
                let cut = completion.times().partition_point(|&x| x <= deadline);
                times.extend_from_slice(&completion.times()[..cut]);
                masses.extend_from_slice(&completion.masses()[..cut]);
                if cut < completion.len() {
                    let moved: f64 = completion.masses()[cut..].iter().sum();
                    match times.last() {
                        Some(&last) if last == deadline => {
                            *masses.last_mut().expect("parallel") += moved;
                        }
                        _ => {
                            times.push(deadline);
                            masses.push(moved);
                        }
                    }
                }
                let mut k = 0;
                if let (Some(&first), Some(&last)) = (carry_times.first(), times.last()) {
                    if first == last {
                        *masses.last_mut().expect("parallel") += carry_masses[0];
                        k = 1;
                    }
                }
                times.extend_from_slice(&carry_times[k..]);
                masses.extend_from_slice(&carry_masses[k..]);
                Pmf::from_parts_unchecked(times, masses)
            } else if carry_times.is_empty() {
                scratch.pmf_from_slices(completion.times(), completion.masses())
            } else {
                // Eq. 4's second branch: for t >= δ, add the predecessor's
                // impulses — the machine frees when task i−1 finishes and
                // task i is dropped.
                let (mut times, mut masses) = scratch.take_storage();
                merge_add(
                    (completion.times(), completion.masses()),
                    (carry_times, carry_masses),
                    &mut times,
                    &mut masses,
                );
                Pmf::from_parts_unchecked(times, masses)
            };
            QueueStep { completion: Some(completion), availability, robustness }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmf(points: &[(Time, f64)]) -> Pmf {
        Pmf::from_points(points).unwrap()
    }

    fn assert_pmf_eq(actual: &Pmf, expected: &[(Time, f64)]) {
        assert_eq!(actual.len(), expected.len(), "impulse count: {actual:?} vs {expected:?}");
        for (imp, &(t, p)) in actual.iter().zip(expected) {
            assert_eq!(imp.t, t, "time mismatch in {actual:?}");
            assert!((imp.p - p).abs() < 1e-12, "mass at t={t}: {} vs {p}", imp.p);
        }
    }

    // ------------------------------------------------------------------
    // Paper Figure 2: PET of arriving task i (δ=7) convolved with the PCT
    // of the last task on machine queue j.
    // ------------------------------------------------------------------

    #[test]
    fn paper_fig2_convolution() {
        let pct_prev = pmf(&[(3, 0.25), (4, 0.50), (5, 0.25)]);
        let pet = pmf(&[(1, 0.50), (2, 0.25), (3, 0.25)]);
        let pct = convolve(&pct_prev, &pet);
        assert_pmf_eq(&pct, &[(4, 0.125), (5, 0.3125), (6, 0.3125), (7, 0.1875), (8, 0.0625)]);
        // Eq. 1 robustness at δ=7.
        assert!((pct.cdf_at(7) - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn convolution_commutes_fig2() {
        let a = pmf(&[(3, 0.25), (4, 0.50), (5, 0.25)]);
        let b = pmf(&[(1, 0.50), (2, 0.25), (3, 0.25)]);
        assert_eq!(convolve(&a, &b), convolve(&b, &a));
    }

    // ------------------------------------------------------------------
    // Paper Figure 3: effect of task i's completion-PMF skewness on the
    // robustness of task i+1 (exec {1:.25, 2:.5, 3:.25}, δ_{i+1} = 5).
    // All three task-i PMFs have robustness 0.75 at δ_i = 3.
    // ------------------------------------------------------------------

    const FIG3_EXEC: &[(Time, f64)] = &[(1, 0.25), (2, 0.50), (3, 0.25)];

    #[test]
    fn paper_fig3a_no_skew() {
        let pct_i = pmf(&[(2, 0.25), (3, 0.50), (4, 0.25)]);
        assert!((pct_i.cdf_at(3) - 0.75).abs() < 1e-12);
        assert!(pct_i.skewness().abs() < 1e-12);
        let pct_next = convolve(&pct_i, &pmf(FIG3_EXEC));
        assert_pmf_eq(&pct_next, &[(3, 0.0625), (4, 0.25), (5, 0.375), (6, 0.25), (7, 0.0625)]);
        assert!((pct_next.cdf_at(5) - 0.6875).abs() < 1e-12, "Fig 3(a): 0.6875 robust");
    }

    #[test]
    fn paper_fig3b_left_skew_hurts_successor() {
        let pct_i = pmf(&[(2, 0.15), (3, 0.60), (4, 0.25)]);
        assert!((pct_i.cdf_at(3) - 0.75).abs() < 1e-12);
        assert!(pct_i.skewness() < 0.0, "left skew");
        let pct_next = convolve(&pct_i, &pmf(FIG3_EXEC));
        assert_pmf_eq(&pct_next, &[(3, 0.0375), (4, 0.225), (5, 0.4), (6, 0.275), (7, 0.0625)]);
        assert!((pct_next.cdf_at(5) - 0.6625).abs() < 1e-12, "Fig 3(b): 0.6625 robust");
    }

    #[test]
    fn paper_fig3c_right_skew_helps_successor() {
        let pct_i = pmf(&[(2, 0.50), (3, 0.25), (4, 0.25)]);
        assert!((pct_i.cdf_at(3) - 0.75).abs() < 1e-12);
        assert!(pct_i.skewness() > 0.0, "right skew");
        let pct_next = convolve(&pct_i, &pmf(FIG3_EXEC));
        assert_pmf_eq(&pct_next, &[(3, 0.125), (4, 0.3125), (5, 0.3125), (6, 0.1875), (7, 0.0625)]);
        assert!((pct_next.cdf_at(5) - 0.75).abs() < 1e-12, "Fig 3(c): 0.75 robust");
    }

    #[test]
    fn fig3_ordering_matches_paper_narrative() {
        // Positive skew propagates benefit; negative skew propagates harm.
        let exec = pmf(FIG3_EXEC);
        let r = |points: &[(Time, f64)]| convolve(&pmf(points), &exec).cdf_at(5);
        let none = r(&[(2, 0.25), (3, 0.50), (4, 0.25)]);
        let left = r(&[(2, 0.15), (3, 0.60), (4, 0.25)]);
        let right = r(&[(2, 0.50), (3, 0.25), (4, 0.25)]);
        assert!(right > none && none > left);
    }

    // ------------------------------------------------------------------
    // Eq. 2-5 queue_step semantics.
    // ------------------------------------------------------------------

    #[test]
    fn policy_none_matches_plain_convolution() {
        let avail = pmf(&[(3, 0.25), (4, 0.50), (5, 0.25)]);
        let exec = pmf(&[(1, 0.50), (2, 0.25), (3, 0.25)]);
        let step = queue_step(&avail, &exec, 7, DropPolicy::None);
        assert_eq!(step.completion.as_ref().unwrap(), &convolve(&avail, &exec));
        assert_eq!(&step.availability, step.completion.as_ref().unwrap());
        assert!((step.robustness - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn pending_only_excludes_late_starts() {
        // Availability straddles the deadline: starts at 3 (ok) and 8 (too
        // late; the pending task is dropped).
        let avail = pmf(&[(3, 0.6), (8, 0.4)]);
        let exec = pmf(&[(2, 1.0)]);
        let step = queue_step(&avail, &exec, 6, DropPolicy::PendingOnly);
        // Completion only from the start at 3: finish at 5 with mass .6.
        let completion = step.completion.as_ref().unwrap();
        assert_pmf_eq(completion, &[(5, 0.6)]);
        assert!((step.robustness - 0.6).abs() < 1e-12);
        // Availability = completion + carry-over at t=8.
        assert_pmf_eq(&step.availability, &[(5, 0.6), (8, 0.4)]);
        assert!(step.availability.is_normalized());
    }

    #[test]
    fn pending_only_start_at_deadline_is_dropped() {
        // Eq. 3 requires start strictly before δ: a start exactly at δ is a
        // drop (the deadline has passed when it would begin).
        let avail = pmf(&[(6, 1.0)]);
        let exec = pmf(&[(1, 1.0)]);
        let step = queue_step(&avail, &exec, 6, DropPolicy::PendingOnly);
        assert!(step.completion.is_none());
        assert_eq!(step.robustness, 0.0);
        assert_pmf_eq(&step.availability, &[(6, 1.0)]);
    }

    #[test]
    fn all_policy_aggregates_completion_tail_at_deadline() {
        // Start at 3 always; exec 2 or 6 → completion at 5 (ok) or 9
        // (evicted at δ=6, machine free at 6).
        let avail = pmf(&[(3, 1.0)]);
        let exec = pmf(&[(2, 0.5), (6, 0.5)]);
        let step = queue_step(&avail, &exec, 6, DropPolicy::All);
        assert!((step.robustness - 0.5).abs() < 1e-12);
        assert_pmf_eq(&step.availability, &[(5, 0.5), (6, 0.5)]);
        // Completion (pre-aggregation, Eq. 4) keeps the true finish times.
        assert_pmf_eq(step.completion.as_ref().unwrap(), &[(5, 0.5), (9, 0.5)]);
    }

    #[test]
    fn all_policy_carryover_survives_past_deadline() {
        // Machine may free at 9 (> δ=6) because the *predecessor* runs
        // long; that mass stays at 9 (the predecessor is not evicted at
        // OUR deadline).
        let avail = pmf(&[(3, 0.5), (9, 0.5)]);
        let exec = pmf(&[(10, 1.0)]);
        let step = queue_step(&avail, &exec, 6, DropPolicy::All);
        assert_eq!(step.robustness, 0.0);
        // Start at 3 → would finish at 13 → evicted at 6; carry-over at 9.
        assert_pmf_eq(&step.availability, &[(6, 0.5), (9, 0.5)]);
    }

    #[test]
    fn robustness_identical_across_policies_for_positive_exec() {
        // With exec times >= 1, late starts can never produce on-time
        // completions, so Eq. 1 robustness is policy-independent; the
        // policies differ only in the availability seen by LATER tasks.
        let avail = pmf(&[(2, 0.3), (5, 0.3), (9, 0.4)]);
        let exec = pmf(&[(1, 0.2), (3, 0.5), (7, 0.3)]);
        let deadline = 8;
        let r_none = queue_step(&avail, &exec, deadline, DropPolicy::None).robustness;
        let r_pend = queue_step(&avail, &exec, deadline, DropPolicy::PendingOnly).robustness;
        let r_all = queue_step(&avail, &exec, deadline, DropPolicy::All).robustness;
        assert!((r_none - r_pend).abs() < 1e-12);
        assert!((r_pend - r_all).abs() < 1e-12);
    }

    #[test]
    fn dropping_improves_successor_availability() {
        // The core claim of §IV: dropping a hopeless task frees the machine
        // earlier for tasks behind it.
        let avail = pmf(&[(2, 0.5), (20, 0.5)]); // predecessor may run very long
        let exec = pmf(&[(5, 1.0)]);
        let deadline = 4; // this task is nearly hopeless
        let none = queue_step(&avail, &exec, deadline, DropPolicy::None);
        let all = queue_step(&avail, &exec, deadline, DropPolicy::All);
        // Under no-drop the machine frees at 7 or 25; under drop-all it
        // frees at 4 (evicted) or 20 (carry-over).
        assert!(all.availability.mean() < none.availability.mean());
        // Successor deadline 9: it succeeds only from the early-freed
        // machine (4+3=7 <= 9) and not from the no-drop path (7+3=10 > 9).
        let successor_exec = pmf(&[(3, 1.0)]);
        let succ_none = queue_step(&none.availability, &successor_exec, 9, DropPolicy::All);
        let succ_all = queue_step(&all.availability, &successor_exec, 9, DropPolicy::All);
        assert!(succ_all.robustness > succ_none.robustness);
    }

    #[test]
    fn mass_conservation_all_policies() {
        let avail = pmf(&[(1, 0.25), (4, 0.25), (7, 0.25), (10, 0.25)]);
        let exec = pmf(&[(2, 0.5), (5, 0.5)]);
        for policy in [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All] {
            let step = queue_step(&avail, &exec, 6, policy);
            assert!(
                (step.availability.mass() - 1.0).abs() < 1e-12,
                "{policy:?}: availability mass {}",
                step.availability.mass()
            );
        }
    }

    #[test]
    fn completion_none_when_avail_entirely_late() {
        let avail = pmf(&[(10, 1.0)]);
        let exec = pmf(&[(1, 1.0)]);
        for policy in [DropPolicy::PendingOnly, DropPolicy::All] {
            let step = queue_step(&avail, &exec, 5, policy);
            assert!(step.completion.is_none());
            assert_eq!(step.robustness, 0.0);
            assert_pmf_eq(&step.availability, &[(10, 1.0)]);
        }
    }

    #[test]
    fn scratch_reuse_produces_identical_results() {
        let a = pmf(&[(1, 0.5), (2, 0.5)]);
        let b = pmf(&[(3, 0.25), (4, 0.75)]);
        let mut scratch = ConvScratch::new();
        let first = convolve_into(&a, &b, &mut scratch);
        let second = convolve_into(&a, &b, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(first, convolve(&a, &b));
    }

    #[test]
    fn pool_recycles_storage_across_steps() {
        let avail = pmf(&[(1, 0.25), (4, 0.25), (7, 0.25), (10, 0.25)]);
        let exec = pmf(&[(2, 0.5), (5, 0.5)]);
        let mut scratch = ConvScratch::new();
        let reference = queue_step(&avail, &exec, 6, DropPolicy::All);
        for _ in 0..10 {
            let step = queue_step_into(&avail, &exec, 6, DropPolicy::All, &mut scratch);
            assert_eq!(step.availability, reference.availability);
            assert_eq!(step.completion, reference.completion);
            step.recycle_into(&mut scratch);
        }
        // Steady state: completion + availability storage both pooled.
        assert!(scratch.pooled() >= 2, "pool empty after recycling");
    }

    #[test]
    fn convolve_with_delta_is_shift() {
        let p = pmf(&[(3, 0.25), (4, 0.50), (5, 0.25)]);
        let shifted = convolve(&p, &Pmf::delta(10));
        assert_eq!(shifted, p.shift(10));
    }

    #[test]
    fn convolution_mean_is_additive() {
        let a = pmf(&[(2, 0.3), (5, 0.7)]);
        let b = pmf(&[(1, 0.6), (9, 0.4)]);
        let c = convolve(&a, &b);
        assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Property-based invariants.
    // ------------------------------------------------------------------

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_pmf(max_t: Time, max_n: usize) -> impl Strategy<Value = Pmf> {
            prop::collection::vec((0..max_t, 0.01f64..1.0), 1..max_n).prop_map(|pts| {
                let mut p = Pmf::from_points(&pts).unwrap();
                p.normalize();
                p
            })
        }

        proptest! {
            #[test]
            fn conv_mass_is_product(a in arb_pmf(100, 8), b in arb_pmf(100, 8)) {
                let c = convolve(&a, &b);
                prop_assert!((c.mass() - a.mass() * b.mass()).abs() < 1e-9);
            }

            #[test]
            fn conv_commutes(a in arb_pmf(50, 6), b in arb_pmf(50, 6)) {
                let ab = convolve(&a, &b);
                let ba = convolve(&b, &a);
                prop_assert_eq!(ab.len(), ba.len());
                for (x, y) in ab.iter().zip(ba.iter()) {
                    prop_assert_eq!(x.t, y.t);
                    prop_assert!((x.p - y.p).abs() < 1e-12);
                }
            }

            #[test]
            fn queue_step_invariants(
                avail in arb_pmf(100, 8),
                exec in arb_pmf(40, 8),
                deadline in 1u64..150,
                policy_idx in 0usize..3,
            ) {
                let policy = [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All][policy_idx];
                let step = queue_step(&avail, &exec, deadline, policy);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&step.robustness));
                // Availability mass conserved (normalized inputs).
                prop_assert!((step.availability.mass() - 1.0).abs() < 1e-9);
                // Availability never predates the earliest possible event.
                prop_assert!(step.availability.min_time() >= avail.min_time().min(deadline));
                if policy == DropPolicy::All {
                    // Machine must be free by max(δ, predecessor max).
                    prop_assert!(step.availability.max_time() <= deadline.max(avail.max_time()));
                }
            }

            #[test]
            fn scratch_path_matches_allocating_path(
                avail in arb_pmf(100, 8),
                exec in arb_pmf(40, 8),
                deadline in 1u64..150,
                policy_idx in 0usize..3,
            ) {
                let policy = [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All][policy_idx];
                let mut scratch = ConvScratch::new();
                // Warm the pool so pooled storage is actually exercised.
                for _ in 0..3 {
                    let warm = queue_step_into(&avail, &exec, deadline, policy, &mut scratch);
                    warm.recycle_into(&mut scratch);
                }
                let pooled = queue_step_into(&avail, &exec, deadline, policy, &mut scratch);
                let fresh = queue_step(&avail, &exec, deadline, policy);
                prop_assert_eq!(&pooled.availability, &fresh.availability);
                prop_assert_eq!(&pooled.completion, &fresh.completion);
                prop_assert!((pooled.robustness - fresh.robustness).abs() == 0.0);
            }

            #[test]
            fn robustness_monotone_in_deadline(
                avail in arb_pmf(60, 6),
                exec in arb_pmf(30, 6),
                d1 in 1u64..100,
                d2 in 1u64..100,
            ) {
                let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
                let r_lo = queue_step(&avail, &exec, lo, DropPolicy::All).robustness;
                let r_hi = queue_step(&avail, &exec, hi, DropPolicy::All).robustness;
                prop_assert!(r_hi + 1e-12 >= r_lo, "robustness must grow with slack: {r_lo} vs {r_hi}");
            }

            #[test]
            fn compaction_preserves_queue_step_mass(
                avail in arb_pmf(200, 20),
                exec in arb_pmf(60, 12),
                deadline in 1u64..250,
            ) {
                let step = queue_step(&avail, &exec, deadline, DropPolicy::All);
                let mut compacted = step.availability.clone();
                compacted.compact(8);
                prop_assert!(compacted.len() <= 8);
                prop_assert!((compacted.mass() - step.availability.mass()).abs() < 1e-9);
            }
        }
    }
}
