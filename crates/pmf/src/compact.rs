//! Impulse aggregation ("compaction").
//!
//! §IV of the paper notes that the convolution overhead "can be mitigated
//! … by aggregating impulses". Without aggregation, convolving a machine
//! queue of depth 6 multiplies impulse counts geometrically; with it, every
//! intermediate PMF is capped at a configurable budget.
//!
//! Strategy: *mass-quantile* grouping. The sorted impulse columns are
//! walked once, cutting a new group whenever the accumulated mass reaches
//! the next multiple of `total / max_impulses`. Each group is replaced by a
//! single impulse at the group's mass-weighted mean time (rounded to the
//! grid). The walk writes groups back into the input columns in place —
//! the write cursor can never overtake the read cursor, so compaction
//! allocates nothing.
//!
//! Properties, verified by the tests below and crate-level proptests:
//! * total mass is preserved exactly (group masses are sums);
//! * the mean moves by at most half a grid unit per group (rounding);
//! * impulse count after compaction is `<= max_impulses`;
//! * the operation is deterministic, order-preserving, and allocation-free.

use crate::Time;

/// Compacts the parallel `times`/`masses` columns (sorted, merged) down to
/// at most `max_impulses` entries in place. `max_impulses` of zero is
/// treated as one.
pub(crate) fn compact_in_place(times: &mut Vec<Time>, masses: &mut Vec<f64>, max_impulses: usize) {
    let max = max_impulses.max(1);
    debug_assert_eq!(times.len(), masses.len());
    if times.len() <= max {
        return;
    }
    let total: f64 = masses.iter().sum();
    if total <= 0.0 {
        // Zero-mass PMFs cannot arise through public constructors, but be
        // defensive: collapse to the first impulse.
        times.truncate(1);
        masses.truncate(1);
        return;
    }
    let quantum = total / max as f64;

    let mut write = 0usize;
    let mut group_mass = 0.0f64;
    let mut group_sum_tp = 0.0f64; // Σ t·p within the group
    let mut cum = 0.0f64; // running mass over all emitted + current group
    let mut next_cut = quantum;

    for read in 0..times.len() {
        let (t, p) = (times[read], masses[read]);
        group_mass += p;
        group_sum_tp += t as f64 * p;
        cum += p;
        // Close the group once we cross the next quantile boundary.
        // (A single heavy impulse may span several boundaries; it still
        // produces one group, which only helps the budget.)
        if cum + 1e-15 >= next_cut {
            times[write] = (group_sum_tp / group_mass).round() as u64;
            masses[write] = group_mass;
            write += 1;
            group_mass = 0.0;
            group_sum_tp = 0.0;
            while next_cut <= cum + 1e-15 {
                next_cut += quantum;
            }
        }
    }
    if group_mass > 0.0 {
        times[write] = (group_sum_tp / group_mass).round() as u64;
        masses[write] = group_mass;
        write += 1;
    }
    times.truncate(write);
    masses.truncate(write);

    // Weighted-mean rounding can make adjacent groups collide on a time.
    merge_sorted_columns(times, masses);
    debug_assert!(times.len() <= max, "compaction produced {} > {max}", times.len());
}

/// Merges runs of equal times in sorted parallel columns (summing mass).
///
/// Like the pair-buffer merge in `pmf`, this walk is prefixed by a 4-wide
/// unrolled adjacency scan over the dense time column: the compacting
/// copy only starts at the first collision, and the common no-collision
/// case (weighted-mean rounding rarely makes neighbours collide) costs a
/// single read-only pass. Masses still sum in input order — bit-identical
/// to the plain walk.
pub(crate) fn merge_sorted_columns(times: &mut Vec<Time>, masses: &mut Vec<f64>) {
    let n = times.len();
    let Some(first) = first_adjacent_duplicate_by(times, |&t| t) else {
        return;
    };
    let mut write = first - 1;
    for read in first..n {
        if times[read] == times[write] {
            masses[write] += masses[read];
        } else {
            write += 1;
            times[write] = times[read];
            masses[write] = masses[read];
        }
    }
    times.truncate(write + 1);
    masses.truncate(write + 1);
}

/// Index of the first element whose key equals its predecessor's, found
/// with a 4-wide unrolled scan — the shared fast-path probe of the
/// duplicate merges here and in `pmf`.
pub(crate) fn first_adjacent_duplicate_by<T>(
    items: &[T],
    key: impl Fn(&T) -> Time,
) -> Option<usize> {
    let n = items.len();
    let mut i = 1usize;
    while i + 3 < n {
        if key(&items[i]) == key(&items[i - 1]) {
            return Some(i);
        }
        if key(&items[i + 1]) == key(&items[i]) {
            return Some(i + 1);
        }
        if key(&items[i + 2]) == key(&items[i + 1]) {
            return Some(i + 2);
        }
        if key(&items[i + 3]) == key(&items[i + 2]) {
            return Some(i + 3);
        }
        i += 4;
    }
    while i < n {
        if key(&items[i]) == key(&items[i - 1]) {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::Pmf;

    fn uniform(n: u64) -> Pmf {
        let p = 1.0 / n as f64;
        Pmf::from_points(&(1..=n).map(|t| (t, p)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn noop_below_budget() {
        let mut p = uniform(8);
        let before = p.clone();
        p.compact(16);
        assert_eq!(p, before);
        p.compact(8);
        assert_eq!(p, before);
    }

    #[test]
    fn reduces_to_budget() {
        for &(n, max) in &[(100u64, 10usize), (64, 16), (1000, 32), (7, 2), (50, 1)] {
            let mut p = uniform(n);
            p.compact(max);
            assert!(p.len() <= max, "n={n} max={max} got {}", p.len());
        }
    }

    #[test]
    fn preserves_total_mass() {
        let mut p = uniform(257);
        let mass_before = p.mass();
        p.compact(12);
        assert!((p.mass() - mass_before).abs() < 1e-12);
    }

    #[test]
    fn approximately_preserves_mean() {
        let mut p = uniform(1000);
        let mean_before = p.mean();
        p.compact(16);
        // Weighted-mean grouping: rounding shifts each group's center by at
        // most 0.5 time units.
        assert!((p.mean() - mean_before).abs() <= 0.5, "mean drifted {}", p.mean() - mean_before);
    }

    #[test]
    fn heavy_impulse_survives() {
        // One impulse carries 90% of the mass; compaction must keep it
        // essentially in place.
        let mut p = Pmf::from_points(&[
            (10, 0.9),
            (100, 0.02),
            (200, 0.02),
            (300, 0.02),
            (400, 0.02),
            (500, 0.02),
        ])
        .unwrap();
        p.compact(3);
        assert!(p.len() <= 3);
        // The dominant mass should remain near t=10.
        assert!(p.cdf_at(20) >= 0.9 - 1e-12, "cdf(20) = {}", p.cdf_at(20));
    }

    #[test]
    fn budget_one_collapses_to_mean() {
        let mut p = Pmf::from_points(&[(10, 0.5), (20, 0.5)]).unwrap();
        p.compact(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.times()[0], 15);
        assert!((p.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_zero_treated_as_one() {
        let mut p = uniform(10);
        p.compact(0);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn deterministic() {
        let mut a = uniform(333);
        let mut b = uniform(333);
        a.compact(20);
        b.compact(20);
        assert_eq!(a, b);
    }

    #[test]
    fn unnormalized_input_supported() {
        // Sub-distributions (mass < 1) occur mid-computation in Eq. 3-4.
        let mut p = Pmf::from_points(&[(1, 0.1), (2, 0.1), (3, 0.1), (4, 0.1)]).unwrap();
        p.compact(2);
        assert!(p.len() <= 2);
        assert!((p.mass() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn monotone_times_after_compaction() {
        let mut p = uniform(500);
        p.compact(25);
        let times = p.times();
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    mod props {
        use crate::Pmf;
        use proptest::prelude::*;

        fn arb_pmf() -> impl Strategy<Value = Pmf> {
            prop::collection::vec((0u64..5_000, 0.001f64..1.0), 2..200).prop_map(|pts| {
                let mut p = Pmf::from_points(&pts).unwrap();
                p.normalize();
                p
            })
        }

        proptest! {
            #[test]
            fn budget_mass_and_order_hold(p in arb_pmf(), max in 1usize..64) {
                let mut c = p.clone();
                c.compact(max);
                prop_assert!(c.len() <= max);
                prop_assert!((c.mass() - p.mass()).abs() < 1e-9);
                for w in c.times().windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }

            #[test]
            fn cdf_error_is_bounded_by_group_mass(p in arb_pmf(), max in 2usize..64) {
                // Mass only moves within a group; a group holds at most
                // quantum + the heaviest single impulse of mass, plus the
                // half-unit rounding of the group center. The CDF at any
                // probe point can therefore shift by at most that much.
                let mut c = p.clone();
                c.compact(max);
                let max_imp =
                    p.masses().iter().copied().fold(0.0f64, f64::max);
                let bound = p.mass() / max as f64 + max_imp + 1e-9;
                for probe in [0u64, 100, 500, 1_000, 2_500, 5_000, 10_000] {
                    let err = (c.cdf_at(probe) - p.cdf_at(probe)).abs();
                    prop_assert!(
                        err <= bound,
                        "cdf error {err} exceeds bound {bound} at t={probe} (max={max})"
                    );
                }
            }

            #[test]
            fn mean_within_one_time_unit(p in arb_pmf(), max in 2usize..64) {
                let mut c = p.clone();
                c.compact(max);
                prop_assert!((c.mean() - p.mean()).abs() <= 1.0);
            }
        }
    }
}
