//! The [`Pmf`] impulse representation and its point-wise operations.

use crate::{Time, MASS_EPSILON};
use hcsim_stats::moments::WeightedMoments;
use hcsim_stats::Histogram;
use serde::{Deserialize, Serialize};

/// A single probability impulse: mass `p` at discrete time `t`.
///
/// Matches the paper's notation `e_ij(t)` / `c_ij(t)` — "an impulse
/// represents the completion time of task i on machine j at time t".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Impulse {
    /// Discrete time of the impulse.
    pub t: Time,
    /// Probability mass at `t` (non-negative, finite).
    pub p: f64,
}

/// Error produced when constructing a [`Pmf`] from invalid data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmfError {
    /// A mass was negative, NaN, or infinite.
    InvalidMass,
    /// The PMF would contain no impulses.
    Empty,
}

impl std::fmt::Display for PmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmfError::InvalidMass => write!(f, "impulse mass must be finite and >= 0"),
            PmfError::Empty => write!(f, "a PMF must contain at least one impulse"),
        }
    }
}

impl std::error::Error for PmfError {}

/// A discrete probability mass function over simulation time.
///
/// Invariants (enforced by every constructor and mutator):
/// * impulses are sorted by strictly increasing `t`;
/// * every mass is finite and non-negative;
/// * there is at least one impulse.
///
/// Total mass is *usually* 1 but sub-distributions (e.g. the deadline-
/// truncated completion PMFs of Eq. 3–4 before carry-over is added) are
/// legal; [`Pmf::is_normalized`] distinguishes the two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pmf {
    impulses: Vec<Impulse>,
}

impl Pmf {
    /// A unit impulse: all mass at time `t`.
    ///
    /// Models a deterministic event, e.g. "machine j is idle now" is
    /// `Pmf::delta(now)` as the availability distribution.
    #[must_use]
    pub fn delta(t: Time) -> Self {
        Self { impulses: vec![Impulse { t, p: 1.0 }] }
    }

    /// Builds a PMF from `(time, mass)` points. Points are sorted and
    /// duplicate times merged; zero-mass points are kept out.
    pub fn from_points(points: &[(Time, f64)]) -> Result<Self, PmfError> {
        let mut impulses = Vec::with_capacity(points.len());
        for &(t, p) in points {
            if !p.is_finite() || p < 0.0 {
                return Err(PmfError::InvalidMass);
            }
            if p > 0.0 {
                impulses.push(Impulse { t, p });
            }
        }
        if impulses.is_empty() {
            return Err(PmfError::Empty);
        }
        impulses.sort_unstable_by_key(|i| i.t);
        merge_sorted_duplicates(&mut impulses);
        Ok(Self { impulses })
    }

    /// Builds a PMF from a [`Histogram`] of continuous samples by rounding
    /// bin centers onto the time grid (clamping below at `1` — an execution
    /// time of zero is meaningless).
    ///
    /// This is the §VI-A pipeline: gamma samples → histogram → PMF.
    #[must_use]
    pub fn from_histogram(hist: &Histogram) -> Self {
        let mut impulses: Vec<Impulse> = hist
            .centers()
            .map(|(c, m)| Impulse { t: (c.round().max(1.0)) as Time, p: m })
            .collect();
        impulses.sort_unstable_by_key(|i| i.t);
        merge_sorted_duplicates(&mut impulses);
        debug_assert!(!impulses.is_empty());
        Self { impulses }
    }

    /// Internal constructor from already-sorted, already-merged impulses.
    pub(crate) fn from_sorted_unchecked(impulses: Vec<Impulse>) -> Self {
        debug_assert!(!impulses.is_empty());
        debug_assert!(impulses.windows(2).all(|w| w[0].t < w[1].t));
        debug_assert!(impulses.iter().all(|i| i.p.is_finite() && i.p >= 0.0));
        Self { impulses }
    }

    /// The impulses, sorted by time.
    #[must_use]
    pub fn impulses(&self) -> &[Impulse] {
        &self.impulses
    }

    /// Number of impulses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.impulses.len()
    }

    /// Always false: the empty PMF is unrepresentable.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total probability mass.
    #[must_use]
    pub fn mass(&self) -> f64 {
        self.impulses.iter().map(|i| i.p).sum()
    }

    /// True when the total mass is 1 within [`MASS_EPSILON`].
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        (self.mass() - 1.0).abs() <= MASS_EPSILON
    }

    /// Earliest impulse time.
    #[must_use]
    pub fn min_time(&self) -> Time {
        self.impulses[0].t
    }

    /// Latest impulse time.
    #[must_use]
    pub fn max_time(&self) -> Time {
        self.impulses[self.impulses.len() - 1].t
    }

    /// CDF at `t`: total mass at times `<= t`.
    ///
    /// Eq. 1 of the paper: the robustness of task `i` on machine `j` is
    /// `p_ij(δ_i) = Σ_{t <= δ_i} c_ij(t)` — i.e. `pct.cdf_at(deadline)`.
    #[must_use]
    pub fn cdf_at(&self, t: Time) -> f64 {
        self.impulses.iter().take_while(|i| i.t <= t).map(|i| i.p).sum()
    }

    /// Mass strictly after `t` (`1 - cdf` for normalized PMFs, without the
    /// cancellation error of computing it that way).
    #[must_use]
    pub fn mass_above(&self, t: Time) -> f64 {
        self.impulses.iter().rev().take_while(|i| i.t > t).map(|i| i.p).sum()
    }

    /// Expected value `Σ t·p(t)` (not normalized by mass; for normalized
    /// PMFs this is the mean).
    #[must_use]
    pub fn expected_value(&self) -> f64 {
        self.impulses.iter().map(|i| i.t as f64 * i.p).sum()
    }

    /// Mean of the distribution: expected value divided by total mass.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let mass = self.mass();
        if mass <= 0.0 {
            return 0.0;
        }
        self.expected_value() / mass
    }

    /// Population variance of the distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.weighted_moments().variance()
    }

    /// Skewness of the distribution (third standardized moment).
    ///
    /// §V-B1 uses the *shape* of a completion-time PMF to decide which
    /// queued tasks to favor when dropping: positive skew ⇒ the task tends
    /// to finish early ⇒ keep it.
    #[must_use]
    pub fn skewness(&self) -> f64 {
        self.weighted_moments().skewness()
    }

    /// Eq. 6 bounded skewness `s ∈ [-1, 1]`.
    #[must_use]
    pub fn bounded_skewness(&self) -> f64 {
        self.skewness().clamp(-1.0, 1.0)
    }

    fn weighted_moments(&self) -> WeightedMoments {
        let mut acc = WeightedMoments::new();
        for i in &self.impulses {
            acc.push(i.t as f64, i.p);
        }
        acc
    }

    /// Shifts every impulse later by `dt`.
    ///
    /// §IV: "the impulses in PET(i, j) are shifted by α to form PCT(i, j)"
    /// when the machine is idle and the task starts at its arrival time α.
    #[must_use]
    pub fn shift(&self, dt: Time) -> Self {
        let impulses = self
            .impulses
            .iter()
            .map(|i| Impulse { t: i.t.checked_add(dt).expect("time overflow in shift"), p: i.p })
            .collect();
        Self { impulses }
    }

    /// Splits into `(below, at_or_above)` around `t`: impulses strictly
    /// before `t` and impulses at or after `t`.
    ///
    /// This is the partition Eq. 3 performs on `PCT(i−1, j)`: starts before
    /// the deadline can execute; the remainder becomes carry-over. Either
    /// side may be `None` when it would be empty.
    #[must_use]
    pub fn partition_at(&self, t: Time) -> (Option<Pmf>, Option<Pmf>) {
        let split = self.impulses.partition_point(|i| i.t < t);
        let below = &self.impulses[..split];
        let above = &self.impulses[split..];
        (
            (!below.is_empty()).then(|| Pmf::from_sorted_unchecked(below.to_vec())),
            (!above.is_empty()).then(|| Pmf::from_sorted_unchecked(above.to_vec())),
        )
    }

    /// Removes mass strictly before `t` and renormalizes. Returns the mass
    /// removed.
    ///
    /// Used to condition an executing task's completion PMF on "it has not
    /// finished by `now`": completion before `now` is impossible, so the
    /// surviving mass is rescaled to 1. If all mass lies before `t`, the
    /// result collapses to a unit impulse at `t` (the task is overdue and
    /// will complete imminently as far as the model knows).
    pub fn condition_min(&mut self, t: Time) -> f64 {
        let split = self.impulses.partition_point(|i| i.t < t);
        if split == 0 {
            return 0.0;
        }
        let removed: f64 = self.impulses[..split].iter().map(|i| i.p).sum();
        self.impulses.drain(..split);
        if self.impulses.is_empty() {
            self.impulses.push(Impulse { t, p: 1.0 });
            return removed;
        }
        let remaining: f64 = self.impulses.iter().map(|i| i.p).sum();
        if remaining > 0.0 {
            let scale = 1.0 / remaining;
            for i in &mut self.impulses {
                i.p *= scale;
            }
        }
        removed
    }

    /// Moves all mass at times strictly greater than `t` onto a single
    /// impulse at `t`.
    ///
    /// This is the Eq. 5 aggregation step: under [`crate::DropPolicy::All`]
    /// a task still running at its deadline is evicted, so the machine is
    /// guaranteed free by `t = δ`; "all the impulses after δ_i are
    /// aggregated into the impulse at t = δ_i".
    pub fn clamp_above(&mut self, t: Time) {
        let split = self.impulses.partition_point(|i| i.t <= t);
        if split == self.impulses.len() {
            return;
        }
        let moved: f64 = self.impulses[split..].iter().map(|i| i.p).sum();
        self.impulses.truncate(split);
        match self.impulses.last_mut() {
            Some(last) if last.t == t => last.p += moved,
            _ => self.impulses.push(Impulse { t, p: moved }),
        }
    }

    /// Adds (superposes) another PMF's impulses into this one.
    ///
    /// Used for the carry-over term of Eq. 4: `c_pend(t) += c_{i−1}(t)` for
    /// `t >= δ_i`. Mass is additive; the result is generally *not*
    /// normalized until all contributions are in.
    pub fn superpose(&mut self, other: &Pmf) {
        // Merge two sorted impulse lists.
        let mut merged = Vec::with_capacity(self.impulses.len() + other.impulses.len());
        let (mut a, mut b) = (self.impulses.iter().peekable(), other.impulses.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.t < y.t {
                        merged.push(**x);
                        a.next();
                    } else if y.t < x.t {
                        merged.push(**y);
                        b.next();
                    } else {
                        merged.push(Impulse { t: x.t, p: x.p + y.p });
                        a.next();
                        b.next();
                    }
                }
                (Some(x), None) => {
                    merged.push(**x);
                    a.next();
                }
                (None, Some(y)) => {
                    merged.push(**y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.impulses = merged;
    }

    /// The residual distribution after `elapsed` time units of execution:
    /// `P(remaining = r) = P(total = elapsed + r | total > elapsed)`.
    ///
    /// This is the §VIII "impact [of preemption] on the convolution
    /// process": a preempted task's remaining work is its execution PMF
    /// conditioned on having already survived `elapsed` units, shifted
    /// back to the origin. When the distribution carries no mass above
    /// `elapsed` (the model thinks the task should already have finished),
    /// the residual collapses to a unit impulse at 1 — "any moment now".
    ///
    /// ```
    /// use hcsim_pmf::Pmf;
    ///
    /// let exec = Pmf::from_points(&[(2, 0.25), (4, 0.5), (6, 0.25)]).unwrap();
    /// let after3 = exec.residual(3); // total must be 4 or 6 → remaining 1 or 3
    /// assert_eq!(after3.impulses().len(), 2);
    /// assert_eq!(after3.min_time(), 1);
    /// assert!(after3.is_normalized());
    /// ```
    #[must_use]
    pub fn residual(&self, elapsed: Time) -> Pmf {
        let above: Vec<Impulse> = self
            .impulses
            .iter()
            .filter(|i| i.t > elapsed)
            .map(|i| Impulse { t: i.t - elapsed, p: i.p })
            .collect();
        if above.is_empty() {
            return Pmf::delta(1);
        }
        let mut residual = Pmf::from_sorted_unchecked(above);
        residual.normalize();
        residual
    }

    /// Rescales all masses so the total becomes exactly 1.
    ///
    /// # Panics
    ///
    /// Panics if the current total mass is zero.
    pub fn normalize(&mut self) {
        let mass = self.mass();
        assert!(mass > 0.0, "cannot normalize a zero-mass PMF");
        let scale = 1.0 / mass;
        for i in &mut self.impulses {
            i.p *= scale;
        }
    }

    /// Reduces the PMF to at most `max_impulses` by aggregating neighbours
    /// (mass-quantile aggregation; see the `compact` module docs). No-op when already small
    /// enough.
    pub fn compact(&mut self, max_impulses: usize) {
        crate::compact::compact_in_place(&mut self.impulses, max_impulses);
    }

    /// Consumes the PMF, returning its impulse vector.
    #[must_use]
    pub fn into_impulses(self) -> Vec<Impulse> {
        self.impulses
    }
}

/// Merges runs of equal-time impulses in a sorted vector (summing mass).
pub(crate) fn merge_sorted_duplicates(impulses: &mut Vec<Impulse>) {
    let mut write = 0usize;
    for read in 1..impulses.len() {
        if impulses[read].t == impulses[write].t {
            impulses[write].p += impulses[read].p;
        } else {
            write += 1;
            impulses[write] = impulses[read];
        }
    }
    impulses.truncate(write + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmf(points: &[(Time, f64)]) -> Pmf {
        Pmf::from_points(points).unwrap()
    }

    #[test]
    fn delta_basics() {
        let d = Pmf::delta(10);
        assert_eq!(d.len(), 1);
        assert!(d.is_normalized());
        assert_eq!(d.min_time(), 10);
        assert_eq!(d.max_time(), 10);
        assert_eq!(d.cdf_at(9), 0.0);
        assert_eq!(d.cdf_at(10), 1.0);
        assert_eq!(d.mean(), 10.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn from_points_sorts_merges_and_drops_zeros() {
        let p = pmf(&[(5, 0.25), (3, 0.25), (5, 0.25), (4, 0.25), (6, 0.0)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.impulses()[0].t, 3);
        assert_eq!(p.impulses()[1].t, 4);
        assert_eq!(p.impulses()[2].t, 5);
        assert!((p.impulses()[2].p - 0.5).abs() < 1e-12);
        assert!(p.is_normalized());
    }

    #[test]
    fn from_points_rejects_bad_mass() {
        assert_eq!(Pmf::from_points(&[(1, -0.1)]), Err(PmfError::InvalidMass));
        assert_eq!(Pmf::from_points(&[(1, f64::NAN)]), Err(PmfError::InvalidMass));
        assert_eq!(Pmf::from_points(&[(1, f64::INFINITY)]), Err(PmfError::InvalidMass));
        assert_eq!(Pmf::from_points(&[]), Err(PmfError::Empty));
        assert_eq!(Pmf::from_points(&[(1, 0.0)]), Err(PmfError::Empty));
    }

    #[test]
    fn error_display() {
        assert!(PmfError::InvalidMass.to_string().contains("finite"));
        assert!(PmfError::Empty.to_string().contains("at least one"));
    }

    #[test]
    fn cdf_and_mass_above_agree() {
        let p = pmf(&[(2, 0.2), (4, 0.3), (6, 0.5)]);
        for t in 0..8 {
            let total = p.cdf_at(t) + p.mass_above(t);
            assert!((total - 1.0).abs() < 1e-12, "t={t}");
        }
        assert_eq!(p.cdf_at(1), 0.0);
        assert!((p.cdf_at(4) - 0.5).abs() < 1e-12);
        assert!((p.cdf_at(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_eq1_robustness_is_cdf_at_deadline() {
        // Fig. 2 convolved PCT = {4:.125, 5:.3125, 6:.3125, 7:.1875, 8:.0625}
        // with δ_i = 7 → robustness .9375.
        let pct = pmf(&[(4, 0.125), (5, 0.3125), (6, 0.3125), (7, 0.1875), (8, 0.0625)]);
        assert!((pct.cdf_at(7) - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_skewness() {
        let p = pmf(&[(1, 0.25), (2, 0.5), (3, 0.25)]);
        assert!((p.mean() - 2.0).abs() < 1e-12);
        assert!((p.variance() - 0.5).abs() < 1e-12);
        assert!(p.skewness().abs() < 1e-12);
    }

    #[test]
    fn skewness_signs_match_paper_fig3() {
        // Fig. 3(c): bulk early, tail right → positive skew.
        let right = pmf(&[(2, 0.50), (3, 0.25), (4, 0.25)]);
        assert!(right.skewness() > 0.0, "right-skew PMF: {}", right.skewness());
        // Fig. 3(b): bulk late-ish with more mass at the right → negative.
        let left = pmf(&[(2, 0.15), (3, 0.60), (4, 0.25)]);
        assert!(left.skewness() < 0.0, "left-skew PMF: {}", left.skewness());
        // Fig. 3(a): symmetric → zero.
        let none = pmf(&[(2, 0.25), (3, 0.50), (4, 0.25)]);
        assert!(none.skewness().abs() < 1e-12);
        assert!(right.bounded_skewness() <= 1.0 && right.bounded_skewness() > 0.0);
    }

    #[test]
    fn bounded_skewness_clamps() {
        let extreme = pmf(&[(1, 0.97), (100, 0.03)]);
        assert!(extreme.skewness() > 1.0);
        assert_eq!(extreme.bounded_skewness(), 1.0);
    }

    #[test]
    fn shift_moves_all_impulses() {
        let p = pmf(&[(1, 0.5), (3, 0.5)]);
        let s = p.shift(10);
        assert_eq!(s.min_time(), 11);
        assert_eq!(s.max_time(), 13);
        assert!((s.mass() - 1.0).abs() < 1e-12);
        assert!((s.mean() - (p.mean() + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn partition_at_boundaries() {
        let p = pmf(&[(2, 0.2), (4, 0.3), (6, 0.5)]);
        let (below, above) = p.partition_at(4);
        let below = below.unwrap();
        let above = above.unwrap();
        assert_eq!(below.len(), 1);
        assert_eq!(below.impulses()[0].t, 2);
        assert_eq!(above.len(), 2);
        assert_eq!(above.impulses()[0].t, 4);
        assert!((below.mass() + above.mass() - 1.0).abs() < 1e-12);

        let (none_below, all) = p.partition_at(0);
        assert!(none_below.is_none());
        assert_eq!(all.unwrap().len(), 3);

        let (all, none_above) = p.partition_at(100);
        assert_eq!(all.unwrap().len(), 3);
        assert!(none_above.is_none());
    }

    #[test]
    fn condition_min_renormalizes() {
        let mut p = pmf(&[(2, 0.25), (4, 0.25), (6, 0.5)]);
        let removed = p.condition_min(4);
        assert!((removed - 0.25).abs() < 1e-12);
        assert!(p.is_normalized());
        assert_eq!(p.min_time(), 4);
        assert!((p.cdf_at(4) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn condition_min_noop_when_no_mass_below() {
        let mut p = pmf(&[(5, 0.5), (6, 0.5)]);
        assert_eq!(p.condition_min(5), 0.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn condition_min_collapses_when_all_mass_below() {
        let mut p = pmf(&[(1, 0.5), (2, 0.5)]);
        let removed = p.condition_min(10);
        assert!((removed - 1.0).abs() < 1e-12);
        assert_eq!(p.len(), 1);
        assert_eq!(p.min_time(), 10);
        assert!(p.is_normalized());
    }

    #[test]
    fn clamp_above_aggregates_tail() {
        // Eq. 5 aggregation: everything after δ collapses onto δ.
        let mut p = pmf(&[(2, 0.2), (5, 0.3), (7, 0.4), (9, 0.1)]);
        p.clamp_above(5);
        assert_eq!(p.max_time(), 5);
        assert!((p.cdf_at(5) - 1.0).abs() < 1e-12);
        assert!((p.impulses()[1].p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn clamp_above_creates_impulse_when_missing() {
        let mut p = pmf(&[(2, 0.5), (8, 0.5)]);
        p.clamp_above(5);
        assert_eq!(p.len(), 2);
        assert_eq!(p.max_time(), 5);
        assert!((p.impulses()[1].p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_above_noop() {
        let mut p = pmf(&[(2, 0.5), (4, 0.5)]);
        let before = p.clone();
        p.clamp_above(10);
        assert_eq!(p, before);
    }

    #[test]
    fn superpose_merges_sorted() {
        let mut a = pmf(&[(1, 0.2), (3, 0.3)]);
        let b = pmf(&[(2, 0.1), (3, 0.2), (5, 0.2)]);
        a.superpose(&b);
        assert_eq!(a.len(), 4);
        assert!((a.mass() - 1.0).abs() < 1e-12);
        assert!((a.impulses()[2].p - 0.5).abs() < 1e-12); // 0.3 + 0.2 at t=3
    }

    #[test]
    fn normalize_rescales() {
        let mut p = pmf(&[(1, 0.2), (2, 0.2)]);
        p.normalize();
        assert!(p.is_normalized());
        assert!((p.impulses()[0].p - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time overflow")]
    fn shift_overflow_panics() {
        let p = pmf(&[(u64::MAX - 1, 1.0)]);
        let _ = p.shift(10);
    }

    #[test]
    fn residual_conditions_and_shifts() {
        let p = pmf(&[(2, 0.25), (4, 0.5), (6, 0.25)]);
        // After 3 units: total must be 4 or 6 → remaining 1 or 3, masses
        // renormalized 0.5/0.75 and 0.25/0.75.
        let r = p.residual(3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.impulses()[0].t, 1);
        assert!((r.impulses()[0].p - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.impulses()[1].t, 3);
        assert!((r.impulses()[1].p - 1.0 / 3.0).abs() < 1e-12);
        assert!(r.is_normalized());
    }

    #[test]
    fn residual_zero_elapsed_is_identity() {
        let p = pmf(&[(2, 0.25), (4, 0.5), (6, 0.25)]);
        assert_eq!(p.residual(0), p);
    }

    #[test]
    fn residual_overdue_collapses_to_one_tick() {
        let p = pmf(&[(2, 0.5), (4, 0.5)]);
        let r = p.residual(10);
        assert_eq!(r, Pmf::delta(1));
    }

    #[test]
    fn residual_mean_decreases_with_elapsed() {
        let p = pmf(&[(5, 0.2), (10, 0.3), (20, 0.3), (40, 0.2)]);
        // Residual mean can exceed the unconditional mean early on (the
        // survivors are the long executions), but must be non-increasing
        // in expectation of remaining+elapsed ... simply check remaining
        // mean is finite, positive, and eventually shrinks.
        let r5 = p.residual(5).mean();
        let r19 = p.residual(19).mean();
        let r39 = p.residual(39).mean();
        assert!(r5 > 0.0 && r19 > 0.0 && r39 > 0.0);
        assert!(r39 <= r19, "{r39} vs {r19}");
        assert_eq!(p.residual(39).max_time(), 1);
    }

    #[test]
    fn from_histogram_quantizes() {
        let hist = Histogram::from_samples(&[10.2, 10.4, 20.6, 20.8], 2);
        let p = Pmf::from_histogram(&hist);
        assert!(p.is_normalized());
        assert_eq!(p.len(), 2);
        assert!(p.min_time() >= 1);
    }

    #[test]
    fn from_histogram_never_emits_time_zero() {
        let hist = Histogram::from_samples(&[0.01, 0.02, 0.03], 2);
        let p = Pmf::from_histogram(&hist);
        assert!(p.min_time() >= 1);
    }
}
