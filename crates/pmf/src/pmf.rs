//! The [`Pmf`] impulse representation and its point-wise operations.
//!
//! Layout: struct-of-arrays. Times and masses live in two parallel vectors
//! (`times: Vec<Time>`, `masses: Vec<f64>`), so the CDF queries on the
//! mapping hot path are a `partition_point` binary search over a dense
//! `&[u64]` followed by a vectorizable partial sum — no pointer-chasing
//! through `(t, p)` pairs, and mass-only passes (normalize, total mass)
//! never touch the time column.

use crate::{Time, MASS_EPSILON};
use hcsim_stats::Histogram;
use serde::{Deserialize, Serialize};

/// A single probability impulse: mass `p` at discrete time `t`.
///
/// Matches the paper's notation `e_ij(t)` / `c_ij(t)` — "an impulse
/// represents the completion time of task i on machine j at time t".
/// [`Pmf`] stores impulses column-wise; this type is the row view yielded
/// by [`Pmf::iter`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Impulse {
    /// Discrete time of the impulse.
    pub t: Time,
    /// Probability mass at `t` (non-negative, finite).
    pub p: f64,
}

/// Mean / variance / skewness of a [`Pmf`], produced by the fused
/// single-pass kernel [`Pmf::moments`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    /// Mean of the distribution.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Third standardized moment (0 for degenerate distributions).
    pub skewness: f64,
}

impl Moments {
    /// Eq. 6 bounded skewness `s ∈ [-1, 1]`.
    #[must_use]
    pub fn bounded_skewness(&self) -> f64 {
        self.skewness.clamp(-1.0, 1.0)
    }
}

/// Error produced when constructing a [`Pmf`] from invalid data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmfError {
    /// A mass was negative, NaN, or infinite.
    InvalidMass,
    /// The PMF would contain no impulses.
    Empty,
}

impl std::fmt::Display for PmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmfError::InvalidMass => write!(f, "impulse mass must be finite and >= 0"),
            PmfError::Empty => write!(f, "a PMF must contain at least one impulse"),
        }
    }
}

impl std::error::Error for PmfError {}

/// A discrete probability mass function over simulation time.
///
/// Invariants (enforced by every constructor and mutator):
/// * `times` is strictly increasing and `masses` runs parallel to it;
/// * every mass is finite and non-negative;
/// * there is at least one impulse.
///
/// Total mass is *usually* 1 but sub-distributions (e.g. the deadline-
/// truncated completion PMFs of Eq. 3–4 before carry-over is added) are
/// legal; [`Pmf::is_normalized`] distinguishes the two.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Pmf {
    times: Vec<Time>,
    masses: Vec<f64>,
}

/// Hand-written so `clone_from` reuses the destination's column buffers —
/// the scorer's pooled-mode copy-out paths clone tails into long-lived
/// buffers on every query, and the derived impl would reallocate both
/// `Vec`s each time.
impl Clone for Pmf {
    fn clone(&self) -> Self {
        Self { times: self.times.clone(), masses: self.masses.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        // Destructured so a new field cannot be silently skipped.
        let Self { times, masses } = source;
        self.times.clone_from(times);
        self.masses.clone_from(masses);
    }
}

impl Pmf {
    /// A unit impulse: all mass at time `t`.
    ///
    /// Models a deterministic event, e.g. "machine j is idle now" is
    /// `Pmf::delta(now)` as the availability distribution.
    #[must_use]
    pub fn delta(t: Time) -> Self {
        Self { times: vec![t], masses: vec![1.0] }
    }

    /// Builds a PMF from `(time, mass)` points. Points are sorted and
    /// duplicate times merged; zero-mass points are kept out.
    pub fn from_points(points: &[(Time, f64)]) -> Result<Self, PmfError> {
        let mut pairs = Vec::with_capacity(points.len());
        for &(t, p) in points {
            if !p.is_finite() || p < 0.0 {
                return Err(PmfError::InvalidMass);
            }
            if p > 0.0 {
                pairs.push(Impulse { t, p });
            }
        }
        if pairs.is_empty() {
            return Err(PmfError::Empty);
        }
        pairs.sort_unstable_by_key(|i| i.t);
        merge_sorted_pairs(&mut pairs);
        Ok(Self::from_pairs(&pairs))
    }

    /// Builds a PMF from a [`Histogram`] of continuous samples by rounding
    /// bin centers onto the time grid (clamping below at `1` — an execution
    /// time of zero is meaningless).
    ///
    /// This is the §VI-A pipeline: gamma samples → histogram → PMF.
    #[must_use]
    pub fn from_histogram(hist: &Histogram) -> Self {
        let mut pairs: Vec<Impulse> = hist
            .centers()
            .map(|(c, m)| Impulse { t: (c.round().max(1.0)) as Time, p: m })
            .collect();
        pairs.sort_unstable_by_key(|i| i.t);
        merge_sorted_pairs(&mut pairs);
        debug_assert!(!pairs.is_empty());
        Self::from_pairs(&pairs)
    }

    /// Internal constructor splitting sorted, merged `(t, p)` pairs into
    /// the column layout.
    pub(crate) fn from_pairs(pairs: &[Impulse]) -> Self {
        let times = pairs.iter().map(|i| i.t).collect();
        let masses = pairs.iter().map(|i| i.p).collect();
        Self::from_parts_unchecked(times, masses)
    }

    /// Internal constructor from already-sorted, already-merged columns.
    pub(crate) fn from_parts_unchecked(times: Vec<Time>, masses: Vec<f64>) -> Self {
        debug_assert!(!times.is_empty());
        debug_assert_eq!(times.len(), masses.len());
        debug_assert!(times.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(masses.iter().all(|p| p.is_finite() && *p >= 0.0));
        Self { times, masses }
    }

    /// Consumes the PMF, returning its columns for storage reuse.
    pub(crate) fn into_parts(self) -> (Vec<Time>, Vec<f64>) {
        (self.times, self.masses)
    }

    /// The impulse times, strictly increasing.
    #[must_use]
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// The impulse masses, parallel to [`Pmf::times`].
    #[must_use]
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Row-wise view of the impulses, in time order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Impulse> + '_ {
        self.times.iter().zip(&self.masses).map(|(&t, &p)| Impulse { t, p })
    }

    /// Number of impulses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Always false: the empty PMF is unrepresentable.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total probability mass.
    #[must_use]
    pub fn mass(&self) -> f64 {
        self.masses.iter().sum()
    }

    /// True when the total mass is 1 within [`MASS_EPSILON`].
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        (self.mass() - 1.0).abs() <= MASS_EPSILON
    }

    /// Earliest impulse time.
    #[must_use]
    pub fn min_time(&self) -> Time {
        self.times[0]
    }

    /// Latest impulse time.
    #[must_use]
    pub fn max_time(&self) -> Time {
        self.times[self.times.len() - 1]
    }

    /// CDF at `t`: total mass at times `<= t`.
    ///
    /// Eq. 1 of the paper: the robustness of task `i` on machine `j` is
    /// `p_ij(δ_i) = Σ_{t <= δ_i} c_ij(t)` — i.e. `pct.cdf_at(deadline)`.
    ///
    /// Binary search for the cut, then a dense partial sum: O(log n + k)
    /// with a branch-free, auto-vectorizable summation loop instead of the
    /// old per-impulse `take_while` compare.
    #[must_use]
    pub fn cdf_at(&self, t: Time) -> f64 {
        let idx = self.times.partition_point(|&x| x <= t);
        self.masses[..idx].iter().sum()
    }

    /// Mass strictly after `t` (`1 - cdf` for normalized PMFs, without the
    /// cancellation error of computing it that way).
    #[must_use]
    pub fn mass_above(&self, t: Time) -> f64 {
        let idx = self.times.partition_point(|&x| x <= t);
        // Summed back-to-front to keep bit-identical results with the
        // historical reverse `take_while` scan.
        self.masses[idx..].iter().rev().sum()
    }

    /// Expected value `Σ t·p(t)` (not normalized by mass; for normalized
    /// PMFs this is the mean).
    #[must_use]
    pub fn expected_value(&self) -> f64 {
        self.times.iter().zip(&self.masses).map(|(&t, &p)| t as f64 * p).sum()
    }

    /// Mean of the distribution: expected value divided by total mass.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let mass = self.mass();
        if mass <= 0.0 {
            return 0.0;
        }
        self.expected_value() / mass
    }

    /// Population variance of the distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.moments().variance
    }

    /// Skewness of the distribution (third standardized moment).
    ///
    /// §V-B1 uses the *shape* of a completion-time PMF to decide which
    /// queued tasks to favor when dropping: positive skew ⇒ the task tends
    /// to finish early ⇒ keep it.
    #[must_use]
    pub fn skewness(&self) -> f64 {
        self.moments().skewness
    }

    /// Eq. 6 bounded skewness `s ∈ [-1, 1]`.
    #[must_use]
    pub fn bounded_skewness(&self) -> f64 {
        self.moments().bounded_skewness()
    }

    /// Mean, variance, and Eq. 6 skewness in **one fused pass** over the
    /// impulses — the moment kernel behind the pruner's stats-mode drop
    /// pass, which runs it on the *uncompacted* completion PMF of every
    /// chain extension (hundreds of impulses; the priciest part of a
    /// stats-mode append).
    ///
    /// The kernel accumulates shifted raw power sums `Σp·xᵏ` with
    /// `x = t − t₀` anchored at the first impulse: three fused multiplies
    /// per impulse with independent accumulator chains (vectorizable, no
    /// per-impulse divisions), where the previous per-impulse Pébay update
    /// cost three divisions on a serial dependency chain. Anchoring at
    /// `t₀` keeps the sums on the scale of the *support width* rather than
    /// absolute simulation time, so converting raw to central moments
    /// loses no meaningful precision (central moments are shift-
    /// invariant; a reference test pins the kernel against the online
    /// accumulator to 1e-9).
    ///
    /// ```
    /// use hcsim_pmf::Pmf;
    ///
    /// let pmf = Pmf::from_points(&[(2, 0.5), (6, 0.5)]).unwrap();
    /// let m = pmf.moments();
    /// assert_eq!(m.mean, 4.0);
    /// assert_eq!(m.variance, 4.0);
    /// assert_eq!(m.skewness, 0.0); // symmetric
    /// ```
    #[must_use]
    pub fn moments(&self) -> Moments {
        let t0 = self.times[0];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (&t, &p) in self.times.iter().zip(&self.masses) {
            let x = (t - t0) as f64;
            let xp = x * p;
            let x2p = x * xp;
            s0 += p;
            s1 += xp;
            s2 += x2p;
            s3 += x * x2p;
        }
        if s0 <= 0.0 {
            return Moments { mean: 0.0, variance: 0.0, skewness: 0.0 };
        }
        let mu = s1 / s0;
        let variance = (s2 / s0 - mu * mu).max(0.0);
        let mean = t0 as f64 + mu;
        if variance <= 1e-300 {
            return Moments { mean, variance: 0.0, skewness: 0.0 };
        }
        // E[(x−µ)³] = E[x³] − 3µE[x²] + 2µ³, standardized by σ³.
        let m3 = s3 / s0 - 3.0 * mu * (s2 / s0) + 2.0 * mu * mu * mu;
        Moments { mean, variance, skewness: m3 / (variance * variance.sqrt()) }
    }

    /// Shifts every impulse later by `dt`.
    ///
    /// §IV: "the impulses in PET(i, j) are shifted by α to form PCT(i, j)"
    /// when the machine is idle and the task starts at its arrival time α.
    #[must_use]
    pub fn shift(&self, dt: Time) -> Self {
        let times = self
            .times
            .iter()
            .map(|&t| t.checked_add(dt).expect("time overflow in shift"))
            .collect();
        Self { times, masses: self.masses.clone() }
    }

    /// Splits into `(below, at_or_above)` around `t`: impulses strictly
    /// before `t` and impulses at or after `t`.
    ///
    /// This is the partition Eq. 3 performs on `PCT(i−1, j)`: starts before
    /// the deadline can execute; the remainder becomes carry-over. Either
    /// side may be `None` when it would be empty.
    #[must_use]
    pub fn partition_at(&self, t: Time) -> (Option<Pmf>, Option<Pmf>) {
        let split = self.times.partition_point(|&x| x < t);
        let below = (split > 0).then(|| {
            Pmf::from_parts_unchecked(self.times[..split].to_vec(), self.masses[..split].to_vec())
        });
        let above = (split < self.len()).then(|| {
            Pmf::from_parts_unchecked(self.times[split..].to_vec(), self.masses[split..].to_vec())
        });
        (below, above)
    }

    /// Index of the first impulse at or after `t` — the Eq. 3 cut between
    /// startable mass (`..idx`) and carry-over (`idx..`).
    #[must_use]
    pub fn partition_index(&self, t: Time) -> usize {
        self.times.partition_point(|&x| x < t)
    }

    /// Removes mass strictly before `t` and renormalizes. Returns the mass
    /// removed.
    ///
    /// Used to condition an executing task's completion PMF on "it has not
    /// finished by `now`": completion before `now` is impossible, so the
    /// surviving mass is rescaled to 1. If all mass lies before `t`, the
    /// result collapses to a unit impulse at `t` (the task is overdue and
    /// will complete imminently as far as the model knows).
    pub fn condition_min(&mut self, t: Time) -> f64 {
        let split = self.times.partition_point(|&x| x < t);
        if split == 0 {
            return 0.0;
        }
        let removed: f64 = self.masses[..split].iter().sum();
        self.times.drain(..split);
        self.masses.drain(..split);
        if self.times.is_empty() {
            self.times.push(t);
            self.masses.push(1.0);
            return removed;
        }
        let remaining: f64 = self.masses.iter().sum();
        if remaining > 0.0 {
            let scale = 1.0 / remaining;
            for p in &mut self.masses {
                *p *= scale;
            }
        }
        removed
    }

    /// Moves all mass at times strictly greater than `t` onto a single
    /// impulse at `t`.
    ///
    /// This is the Eq. 5 aggregation step: under [`crate::DropPolicy::All`]
    /// a task still running at its deadline is evicted, so the machine is
    /// guaranteed free by `t = δ`; "all the impulses after δ_i are
    /// aggregated into the impulse at t = δ_i".
    pub fn clamp_above(&mut self, t: Time) {
        let split = self.times.partition_point(|&x| x <= t);
        if split == self.len() {
            return;
        }
        let moved: f64 = self.masses[split..].iter().sum();
        self.times.truncate(split);
        self.masses.truncate(split);
        match self.times.last() {
            Some(&last) if last == t => *self.masses.last_mut().expect("parallel") += moved,
            _ => {
                self.times.push(t);
                self.masses.push(moved);
            }
        }
    }

    /// Adds (superposes) another PMF's impulses into this one.
    ///
    /// Used for the carry-over term of Eq. 4: `c_pend(t) += c_{i−1}(t)` for
    /// `t >= δ_i`. Mass is additive; the result is generally *not*
    /// normalized until all contributions are in.
    pub fn superpose(&mut self, other: &Pmf) {
        let mut times = Vec::with_capacity(self.len() + other.len());
        let mut masses = Vec::with_capacity(self.len() + other.len());
        merge_add(
            (&self.times, &self.masses),
            (&other.times, &other.masses),
            &mut times,
            &mut masses,
        );
        self.times = times;
        self.masses = masses;
    }

    /// The residual distribution after `elapsed` time units of execution:
    /// `P(remaining = r) = P(total = elapsed + r | total > elapsed)`.
    ///
    /// This is the §VIII "impact [of preemption] on the convolution
    /// process": a preempted task's remaining work is its execution PMF
    /// conditioned on having already survived `elapsed` units, shifted
    /// back to the origin. When the distribution carries no mass above
    /// `elapsed` (the model thinks the task should already have finished),
    /// the residual collapses to a unit impulse at 1 — "any moment now".
    ///
    /// ```
    /// use hcsim_pmf::Pmf;
    ///
    /// let exec = Pmf::from_points(&[(2, 0.25), (4, 0.5), (6, 0.25)]).unwrap();
    /// let after3 = exec.residual(3); // total must be 4 or 6 → remaining 1 or 3
    /// assert_eq!(after3.len(), 2);
    /// assert_eq!(after3.min_time(), 1);
    /// assert!(after3.is_normalized());
    /// ```
    #[must_use]
    pub fn residual(&self, elapsed: Time) -> Pmf {
        let mut scratch = crate::ConvScratch::new();
        self.residual_shifted_into(elapsed, 0, &mut scratch)
    }

    /// [`Pmf::residual`] with the result shifted `dt` later and its
    /// storage drawn from `scratch`'s free-list — the allocation-free form
    /// the mapping loop uses for preempted queue entries and conditioned
    /// executing heads (recycle the result via
    /// [`crate::ConvScratch::recycle`]). Bit-identical to
    /// `residual(elapsed).shift(dt)`: the time arithmetic is the same
    /// integer sum and normalization scales the same mass column.
    ///
    /// # Panics
    ///
    /// Panics when a shifted time overflows the time domain.
    #[must_use]
    pub fn residual_shifted_into(
        &self,
        elapsed: Time,
        dt: Time,
        scratch: &mut crate::ConvScratch,
    ) -> Pmf {
        let (mut times, mut masses) = scratch.take_storage();
        let split = self.times.partition_point(|&x| x <= elapsed);
        if split == self.len() {
            // Overdue: the model collapses to "any moment now".
            times.push(1u64.checked_add(dt).expect("time overflow in residual shift"));
            masses.push(1.0);
            return Pmf::from_parts_unchecked(times, masses);
        }
        times.extend(
            self.times[split..]
                .iter()
                .map(|&t| (t - elapsed).checked_add(dt).expect("time overflow in residual shift")),
        );
        masses.extend_from_slice(&self.masses[split..]);
        let mut residual = Pmf::from_parts_unchecked(times, masses);
        residual.normalize();
        residual
    }

    /// Rescales all masses so the total becomes exactly 1.
    ///
    /// # Panics
    ///
    /// Panics if the current total mass is zero.
    pub fn normalize(&mut self) {
        let mass = self.mass();
        assert!(mass > 0.0, "cannot normalize a zero-mass PMF");
        let scale = 1.0 / mass;
        for p in &mut self.masses {
            *p *= scale;
        }
    }

    /// Reduces the PMF to at most `max_impulses` by aggregating neighbours
    /// (mass-quantile aggregation; see the `compact` module docs). No-op when already small
    /// enough.
    pub fn compact(&mut self, max_impulses: usize) {
        crate::compact::compact_in_place(&mut self.times, &mut self.masses, max_impulses);
    }
}

/// Merges runs of equal-time impulses in a sorted pair buffer (summing
/// mass) — the post-sort fixup shared by the constructors and convolution.
///
/// The leading duplicate-free prefix is detected by a 4-wide unrolled
/// adjacency scan first, so the compacting read/write walk — which copies
/// every element — only starts at the first collision. Buffers with no
/// collisions at all (common for post-compaction columns) cost one linear
/// scan and zero writes. Masses still sum in input order, so results are
/// bit-identical to the plain walk.
pub(crate) fn merge_sorted_pairs(pairs: &mut Vec<Impulse>) {
    let n = pairs.len();
    let Some(first) = crate::compact::first_adjacent_duplicate_by(pairs, |i| i.t) else {
        return;
    };
    let mut write = first - 1;
    for read in first..n {
        if pairs[read].t == pairs[write].t {
            pairs[write].p += pairs[read].p;
        } else {
            write += 1;
            pairs[write] = pairs[read];
        }
    }
    pairs.truncate(write + 1);
}

/// Merges two sorted column sets into `out_times`/`out_masses`, summing
/// masses at equal times. Output buffers are appended to (callers clear).
pub(crate) fn merge_add(
    a: (&[Time], &[f64]),
    b: (&[Time], &[f64]),
    out_times: &mut Vec<Time>,
    out_masses: &mut Vec<f64>,
) {
    let (at, am) = a;
    let (bt, bm) = b;
    let (mut i, mut j) = (0usize, 0usize);
    while i < at.len() && j < bt.len() {
        if at[i] < bt[j] {
            out_times.push(at[i]);
            out_masses.push(am[i]);
            i += 1;
        } else if bt[j] < at[i] {
            out_times.push(bt[j]);
            out_masses.push(bm[j]);
            j += 1;
        } else {
            out_times.push(at[i]);
            out_masses.push(am[i] + bm[j]);
            i += 1;
            j += 1;
        }
    }
    out_times.extend_from_slice(&at[i..]);
    out_masses.extend_from_slice(&am[i..]);
    out_times.extend_from_slice(&bt[j..]);
    out_masses.extend_from_slice(&bm[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmf(points: &[(Time, f64)]) -> Pmf {
        Pmf::from_points(points).unwrap()
    }

    #[test]
    fn delta_basics() {
        let d = Pmf::delta(10);
        assert_eq!(d.len(), 1);
        assert!(d.is_normalized());
        assert_eq!(d.min_time(), 10);
        assert_eq!(d.max_time(), 10);
        assert_eq!(d.cdf_at(9), 0.0);
        assert_eq!(d.cdf_at(10), 1.0);
        assert_eq!(d.mean(), 10.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn from_points_sorts_merges_and_drops_zeros() {
        let p = pmf(&[(5, 0.25), (3, 0.25), (5, 0.25), (4, 0.25), (6, 0.0)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.times(), &[3, 4, 5]);
        assert!((p.masses()[2] - 0.5).abs() < 1e-12);
        assert!(p.is_normalized());
    }

    #[test]
    fn iter_yields_row_view() {
        let p = pmf(&[(2, 0.25), (7, 0.75)]);
        let rows: Vec<Impulse> = p.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], Impulse { t: 2, p: 0.25 });
        assert_eq!(rows[1], Impulse { t: 7, p: 0.75 });
        assert_eq!(p.iter().len(), 2);
    }

    #[test]
    fn from_points_rejects_bad_mass() {
        assert_eq!(Pmf::from_points(&[(1, -0.1)]), Err(PmfError::InvalidMass));
        assert_eq!(Pmf::from_points(&[(1, f64::NAN)]), Err(PmfError::InvalidMass));
        assert_eq!(Pmf::from_points(&[(1, f64::INFINITY)]), Err(PmfError::InvalidMass));
        assert_eq!(Pmf::from_points(&[]), Err(PmfError::Empty));
        assert_eq!(Pmf::from_points(&[(1, 0.0)]), Err(PmfError::Empty));
    }

    #[test]
    fn error_display() {
        assert!(PmfError::InvalidMass.to_string().contains("finite"));
        assert!(PmfError::Empty.to_string().contains("at least one"));
    }

    #[test]
    fn cdf_and_mass_above_agree() {
        let p = pmf(&[(2, 0.2), (4, 0.3), (6, 0.5)]);
        for t in 0..8 {
            let total = p.cdf_at(t) + p.mass_above(t);
            assert!((total - 1.0).abs() < 1e-12, "t={t}");
        }
        assert_eq!(p.cdf_at(1), 0.0);
        assert!((p.cdf_at(4) - 0.5).abs() < 1e-12);
        assert!((p.cdf_at(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_binary_search_matches_linear_scan_on_long_pmf() {
        // Regression guard for the partition_point cut: probe every
        // boundary of a many-impulse PMF against a reference linear scan.
        let points: Vec<(Time, f64)> = (0..257u64).map(|t| (3 * t + 1, 1.0 / 257.0)).collect();
        let p = pmf(&points);
        for probe in 0..800u64 {
            let linear: f64 = p.iter().take_while(|i| i.t <= probe).map(|i| i.p).sum();
            assert!((p.cdf_at(probe) - linear).abs() < 1e-15, "probe {probe}");
            let linear_above: f64 = p
                .iter()
                .collect::<Vec<_>>()
                .iter()
                .rev()
                .take_while(|i| i.t > probe)
                .map(|i| i.p)
                .sum();
            assert!((p.mass_above(probe) - linear_above).abs() < 1e-15, "probe {probe}");
        }
    }

    #[test]
    fn paper_eq1_robustness_is_cdf_at_deadline() {
        // Fig. 2 convolved PCT = {4:.125, 5:.3125, 6:.3125, 7:.1875, 8:.0625}
        // with δ_i = 7 → robustness .9375.
        let pct = pmf(&[(4, 0.125), (5, 0.3125), (6, 0.3125), (7, 0.1875), (8, 0.0625)]);
        assert!((pct.cdf_at(7) - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_skewness() {
        let p = pmf(&[(1, 0.25), (2, 0.5), (3, 0.25)]);
        assert!((p.mean() - 2.0).abs() < 1e-12);
        assert!((p.variance() - 0.5).abs() < 1e-12);
        assert!(p.skewness().abs() < 1e-12);
    }

    #[test]
    fn skewness_signs_match_paper_fig3() {
        // Fig. 3(c): bulk early, tail right → positive skew.
        let right = pmf(&[(2, 0.50), (3, 0.25), (4, 0.25)]);
        assert!(right.skewness() > 0.0, "right-skew PMF: {}", right.skewness());
        // Fig. 3(b): bulk late-ish with more mass at the right → negative.
        let left = pmf(&[(2, 0.15), (3, 0.60), (4, 0.25)]);
        assert!(left.skewness() < 0.0, "left-skew PMF: {}", left.skewness());
        // Fig. 3(a): symmetric → zero.
        let none = pmf(&[(2, 0.25), (3, 0.50), (4, 0.25)]);
        assert!(none.skewness().abs() < 1e-12);
        assert!(right.bounded_skewness() <= 1.0 && right.bounded_skewness() > 0.0);
    }

    #[test]
    fn bounded_skewness_clamps() {
        let extreme = pmf(&[(1, 0.97), (100, 0.03)]);
        assert!(extreme.skewness() > 1.0);
        assert_eq!(extreme.bounded_skewness(), 1.0);
    }

    #[test]
    fn fused_moments_match_online_accumulator() {
        // The fused raw-power-sum kernel against the Pébay-style online
        // accumulator it replaced, including far-from-origin supports
        // (where the t0 anchor is what preserves precision).
        use hcsim_stats::moments::WeightedMoments;
        let cases: Vec<Vec<(Time, f64)>> = vec![
            vec![(1, 0.25), (2, 0.5), (3, 0.25)],
            vec![(2, 0.50), (3, 0.25), (4, 0.25)],
            vec![(1, 0.97), (100, 0.03)],
            vec![(5, 1.0)],
            // A wide support anchored far from the origin: the regime the
            // drop pass sees (completion times in the thousands, spread
            // over tens of units).
            (0..400).map(|i| (1_000_000 + 3 * i, 1.0 / 400.0)).collect(),
            (0..97).map(|i| (250_000 + i * i, ((i % 7) + 1) as f64 / 400.0)).collect(),
        ];
        for pts in cases {
            let p = pmf(&pts);
            let m = p.moments();
            let mut reference = WeightedMoments::new();
            for (&t, &w) in p.times().iter().zip(p.masses()) {
                reference.push(t as f64, w);
            }
            let scale = reference.variance().max(1.0);
            assert!((m.mean - reference.mean()).abs() < 1e-9 * reference.mean().max(1.0));
            assert!(
                (m.variance - reference.variance()).abs() < 1e-9 * scale,
                "variance {} vs {}",
                m.variance,
                reference.variance()
            );
            assert!(
                (m.skewness - reference.skewness()).abs() < 1e-9,
                "skewness {} vs {}",
                m.skewness,
                reference.skewness()
            );
            assert_eq!(m.bounded_skewness(), m.skewness.clamp(-1.0, 1.0));
        }
    }

    #[test]
    fn fused_moments_degenerate_cases() {
        let single = pmf(&[(42, 1.0)]);
        let m = single.moments();
        assert_eq!(m.mean, 42.0);
        assert_eq!(m.variance, 0.0);
        assert_eq!(m.skewness, 0.0);
        // All-zero masses (legal sub-distribution boundary).
        let zero = Pmf::from_parts_unchecked(vec![5, 9], vec![0.0, 0.0]);
        let mz = zero.moments();
        assert_eq!((mz.mean, mz.variance, mz.skewness), (0.0, 0.0, 0.0));
    }

    #[test]
    fn shift_moves_all_impulses() {
        let p = pmf(&[(1, 0.5), (3, 0.5)]);
        let s = p.shift(10);
        assert_eq!(s.min_time(), 11);
        assert_eq!(s.max_time(), 13);
        assert!((s.mass() - 1.0).abs() < 1e-12);
        assert!((s.mean() - (p.mean() + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn partition_at_boundaries() {
        let p = pmf(&[(2, 0.2), (4, 0.3), (6, 0.5)]);
        let (below, above) = p.partition_at(4);
        let below = below.unwrap();
        let above = above.unwrap();
        assert_eq!(below.len(), 1);
        assert_eq!(below.times()[0], 2);
        assert_eq!(above.len(), 2);
        assert_eq!(above.times()[0], 4);
        assert!((below.mass() + above.mass() - 1.0).abs() < 1e-12);
        assert_eq!(p.partition_index(4), 1);

        let (none_below, all) = p.partition_at(0);
        assert!(none_below.is_none());
        assert_eq!(all.unwrap().len(), 3);
        assert_eq!(p.partition_index(0), 0);

        let (all, none_above) = p.partition_at(100);
        assert_eq!(all.unwrap().len(), 3);
        assert!(none_above.is_none());
        assert_eq!(p.partition_index(100), 3);
    }

    #[test]
    fn condition_min_renormalizes() {
        let mut p = pmf(&[(2, 0.25), (4, 0.25), (6, 0.5)]);
        let removed = p.condition_min(4);
        assert!((removed - 0.25).abs() < 1e-12);
        assert!(p.is_normalized());
        assert_eq!(p.min_time(), 4);
        assert!((p.cdf_at(4) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn condition_min_noop_when_no_mass_below() {
        let mut p = pmf(&[(5, 0.5), (6, 0.5)]);
        assert_eq!(p.condition_min(5), 0.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn condition_min_collapses_when_all_mass_below() {
        let mut p = pmf(&[(1, 0.5), (2, 0.5)]);
        let removed = p.condition_min(10);
        assert!((removed - 1.0).abs() < 1e-12);
        assert_eq!(p.len(), 1);
        assert_eq!(p.min_time(), 10);
        assert!(p.is_normalized());
    }

    #[test]
    fn clamp_above_aggregates_tail() {
        // Eq. 5 aggregation: everything after δ collapses onto δ.
        let mut p = pmf(&[(2, 0.2), (5, 0.3), (7, 0.4), (9, 0.1)]);
        p.clamp_above(5);
        assert_eq!(p.max_time(), 5);
        assert!((p.cdf_at(5) - 1.0).abs() < 1e-12);
        assert!((p.masses()[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn clamp_above_creates_impulse_when_missing() {
        let mut p = pmf(&[(2, 0.5), (8, 0.5)]);
        p.clamp_above(5);
        assert_eq!(p.len(), 2);
        assert_eq!(p.max_time(), 5);
        assert!((p.masses()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_above_noop() {
        let mut p = pmf(&[(2, 0.5), (4, 0.5)]);
        let before = p.clone();
        p.clamp_above(10);
        assert_eq!(p, before);
    }

    #[test]
    fn superpose_merges_sorted() {
        let mut a = pmf(&[(1, 0.2), (3, 0.3)]);
        let b = pmf(&[(2, 0.1), (3, 0.2), (5, 0.2)]);
        a.superpose(&b);
        assert_eq!(a.len(), 4);
        assert!((a.mass() - 1.0).abs() < 1e-12);
        assert!((a.masses()[2] - 0.5).abs() < 1e-12); // 0.3 + 0.2 at t=3
    }

    #[test]
    fn normalize_rescales() {
        let mut p = pmf(&[(1, 0.2), (2, 0.2)]);
        p.normalize();
        assert!(p.is_normalized());
        assert!((p.masses()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time overflow")]
    fn shift_overflow_panics() {
        let p = pmf(&[(u64::MAX - 1, 1.0)]);
        let _ = p.shift(10);
    }

    #[test]
    fn residual_conditions_and_shifts() {
        let p = pmf(&[(2, 0.25), (4, 0.5), (6, 0.25)]);
        // After 3 units: total must be 4 or 6 → remaining 1 or 3, masses
        // renormalized 0.5/0.75 and 0.25/0.75.
        let r = p.residual(3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.times()[0], 1);
        assert!((r.masses()[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.times()[1], 3);
        assert!((r.masses()[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!(r.is_normalized());
    }

    #[test]
    fn residual_zero_elapsed_is_identity() {
        let p = pmf(&[(2, 0.25), (4, 0.5), (6, 0.25)]);
        assert_eq!(p.residual(0), p);
    }

    #[test]
    fn residual_overdue_collapses_to_one_tick() {
        let p = pmf(&[(2, 0.5), (4, 0.5)]);
        let r = p.residual(10);
        assert_eq!(r, Pmf::delta(1));
    }

    #[test]
    fn residual_mean_decreases_with_elapsed() {
        let p = pmf(&[(5, 0.2), (10, 0.3), (20, 0.3), (40, 0.2)]);
        // Residual mean can exceed the unconditional mean early on (the
        // survivors are the long executions), but must be non-increasing
        // in expectation of remaining+elapsed ... simply check remaining
        // mean is finite, positive, and eventually shrinks.
        let r5 = p.residual(5).mean();
        let r19 = p.residual(19).mean();
        let r39 = p.residual(39).mean();
        assert!(r5 > 0.0 && r19 > 0.0 && r39 > 0.0);
        assert!(r39 <= r19, "{r39} vs {r19}");
        assert_eq!(p.residual(39).max_time(), 1);
    }

    #[test]
    fn from_histogram_quantizes() {
        let hist = Histogram::from_samples(&[10.2, 10.4, 20.6, 20.8], 2);
        let p = Pmf::from_histogram(&hist);
        assert!(p.is_normalized());
        assert_eq!(p.len(), 2);
        assert!(p.min_time() >= 1);
    }

    #[test]
    fn from_histogram_never_emits_time_zero() {
        let hist = Histogram::from_samples(&[0.01, 0.02, 0.03], 2);
        let p = Pmf::from_histogram(&hist);
        assert!(p.min_time() >= 1);
    }

    #[test]
    fn merge_add_sums_equal_times() {
        let mut times = Vec::new();
        let mut masses = Vec::new();
        merge_add(
            (&[1, 3, 5], &[0.1, 0.2, 0.3]),
            (&[3, 6], &[0.05, 0.15]),
            &mut times,
            &mut masses,
        );
        assert_eq!(times, vec![1, 3, 5, 6]);
        assert!((masses[1] - 0.25).abs() < 1e-15);
        assert!((masses.iter().sum::<f64>() - 0.8).abs() < 1e-15);
    }

    // ------------------------------------------------------------------
    // Property-based invariants of the residual (migration) path.
    // ------------------------------------------------------------------

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_pmf(max_t: Time, max_n: usize) -> impl Strategy<Value = Pmf> {
            prop::collection::vec((0..max_t, 0.01f64..1.0), 1..max_n).prop_map(|pts| {
                let mut p = Pmf::from_points(&pts).unwrap();
                p.normalize();
                p
            })
        }

        proptest! {
            /// The migration path's core soundness property: conditioning
            /// an execution PMF on `elapsed` progress conserves unit mass
            /// — a requeued task that carries progress must be exactly as
            /// probable to finish as a fresh one, just sooner.
            #[test]
            fn residual_conserves_mass(p in arb_pmf(100, 8), elapsed in 0u64..150) {
                let r = p.residual(elapsed);
                prop_assert!((r.mass() - 1.0).abs() < 1e-9);
                prop_assert!(r.min_time() >= 1);
            }

            /// The scratch-reusing shifted form the scorer's chain cache
            /// calls must agree with the compositional definition.
            #[test]
            fn residual_shifted_matches_residual_then_shift(
                p in arb_pmf(100, 8),
                elapsed in 0u64..150,
                dt in 0u64..100,
            ) {
                let mut scratch = crate::ConvScratch::new();
                let fused = p.residual_shifted_into(elapsed, dt, &mut scratch);
                let composed = p.residual(elapsed).shift(dt);
                prop_assert_eq!(fused, composed);
            }
        }
    }
}
