//! Monte-Carlo validation of the Eq. 2–5 queue-step semantics.
//!
//! The analytic convolutions in `hcsim-pmf` were derived from the paper's
//! closed forms; this test validates them against a brute-force sampler
//! that *acts out* the queue semantics draw by draw:
//!
//! * draw a machine-free time `u ~ avail` and an execution time `e ~ exec`;
//! * scenario A: the task always runs, completing at `u + e`;
//! * scenario B: if `u >= δ` the task is dropped (machine free at `u`),
//!   otherwise it runs to `u + e`;
//! * scenario C: as B, but a run still alive at `δ` is evicted (machine
//!   free at `δ`).
//!
//! Robustness and the availability distribution estimated from 400 000
//! samples must agree with the analytic PMFs.

use hcsim_pmf::{queue_step, DropPolicy, Pmf, Time};
use hcsim_stats::{SeedSequence, Xoshiro256pp};

/// Samples a time from a normalized PMF via inverse CDF.
fn sample_pmf(pmf: &Pmf, rng: &mut Xoshiro256pp) -> Time {
    let u = rng.next_f64() * pmf.mass();
    let mut acc = 0.0;
    for imp in pmf.impulses() {
        acc += imp.p;
        if u < acc {
            return imp.t;
        }
    }
    pmf.max_time()
}

struct McEstimate {
    robustness: f64,
    avail_mean: f64,
    avail_cdf_at: Box<dyn Fn(Time) -> f64>,
}

fn monte_carlo(
    avail: &Pmf,
    exec: &Pmf,
    deadline: Time,
    policy: DropPolicy,
    samples: usize,
    seed: u64,
) -> McEstimate {
    let mut rng = SeedSequence::new(seed).stream(0);
    let mut successes = 0usize;
    let mut free_times: Vec<Time> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let u = sample_pmf(avail, &mut rng);
        let e = sample_pmf(exec, &mut rng);
        let (free, on_time) = match policy {
            DropPolicy::None => (u + e, u + e <= deadline),
            DropPolicy::PendingOnly => {
                if u >= deadline {
                    (u, false) // dropped before starting
                } else {
                    (u + e, u + e <= deadline)
                }
            }
            DropPolicy::All => {
                if u >= deadline {
                    (u, false)
                } else if u + e <= deadline {
                    (u + e, true)
                } else {
                    (deadline, false) // evicted at δ
                }
            }
        };
        if on_time {
            successes += 1;
        }
        free_times.push(free);
    }
    free_times.sort_unstable();
    let n = free_times.len() as f64;
    let avail_mean = free_times.iter().map(|&t| t as f64).sum::<f64>() / n;
    let robustness = successes as f64 / n;
    let cdf = move |t: Time| free_times.partition_point(|&x| x <= t) as f64 / n;
    McEstimate { robustness, avail_mean, avail_cdf_at: Box::new(cdf) }
}

fn check_case(avail: &Pmf, exec: &Pmf, deadline: Time, policy: DropPolicy, seed: u64) {
    const SAMPLES: usize = 400_000;
    const TOL: f64 = 0.005; // ~6 sigma for 400k Bernoulli samples

    let step = queue_step(avail, exec, deadline, policy);
    let mc = monte_carlo(avail, exec, deadline, policy, SAMPLES, seed);

    assert!(
        (step.robustness - mc.robustness).abs() < TOL,
        "{policy:?} δ={deadline}: analytic robustness {} vs MC {}",
        step.robustness,
        mc.robustness
    );
    assert!(
        (step.availability.mean() - mc.avail_mean).abs() / mc.avail_mean.max(1.0) < 0.01,
        "{policy:?} δ={deadline}: analytic avail mean {} vs MC {}",
        step.availability.mean(),
        mc.avail_mean
    );
    // Availability CDF agreement at several probe points.
    for probe in [deadline / 2, deadline, deadline + 5, deadline * 2] {
        let analytic = step.availability.cdf_at(probe);
        let sampled = (mc.avail_cdf_at)(probe);
        assert!(
            (analytic - sampled).abs() < TOL,
            "{policy:?} δ={deadline}: availability CDF({probe}) {analytic} vs MC {sampled}"
        );
    }
}

fn pmf(points: &[(Time, f64)]) -> Pmf {
    Pmf::from_points(points).unwrap()
}

#[test]
fn mc_validates_simple_straddling_case() {
    let avail = pmf(&[(3, 0.6), (8, 0.4)]);
    let exec = pmf(&[(2, 0.5), (6, 0.5)]);
    for (i, policy) in
        [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All].into_iter().enumerate()
    {
        check_case(&avail, &exec, 6, policy, 100 + i as u64);
    }
}

#[test]
fn mc_validates_paper_fig2_shapes() {
    let avail = pmf(&[(3, 0.25), (4, 0.50), (5, 0.25)]);
    let exec = pmf(&[(1, 0.50), (2, 0.25), (3, 0.25)]);
    for (i, policy) in
        [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All].into_iter().enumerate()
    {
        check_case(&avail, &exec, 7, policy, 200 + i as u64);
    }
}

#[test]
fn mc_validates_wide_distributions() {
    // Wider, irregular PMFs with the deadline cutting through both the
    // availability and the completion distributions.
    let avail = pmf(&[(1, 0.15), (6, 0.2), (11, 0.3), (19, 0.2), (30, 0.15)]);
    let exec = pmf(&[(2, 0.3), (5, 0.25), (9, 0.25), (16, 0.2)]);
    for (i, policy) in
        [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All].into_iter().enumerate()
    {
        for (j, deadline) in [8u64, 15, 24, 40].into_iter().enumerate() {
            check_case(&avail, &exec, deadline, policy, 300 + (i * 10 + j) as u64);
        }
    }
}

#[test]
fn mc_validates_hopeless_and_certain_extremes() {
    let avail = pmf(&[(10, 1.0)]);
    let exec = pmf(&[(5, 1.0)]);
    // Deadline before any possible start: drop (B/C) or late run (A).
    check_case(&avail, &exec, 8, DropPolicy::All, 400);
    check_case(&avail, &exec, 8, DropPolicy::None, 401);
    // Deadline after everything: certain success.
    check_case(&avail, &exec, 100, DropPolicy::All, 402);
}
