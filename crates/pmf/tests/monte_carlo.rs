//! Monte-Carlo validation of the Eq. 2–5 queue-step semantics.
//!
//! The analytic convolutions in `hcsim-pmf` were derived from the paper's
//! closed forms; this test validates them against a brute-force sampler
//! that *acts out* the queue semantics draw by draw:
//!
//! * draw a machine-free time `u ~ avail` and an execution time `e ~ exec`;
//! * scenario A: the task always runs, completing at `u + e`;
//! * scenario B: if `u >= δ` the task is dropped (machine free at `u`),
//!   otherwise it runs to `u + e`;
//! * scenario C: as B, but a run still alive at `δ` is evicted (machine
//!   free at `δ`).
//!
//! Robustness and the availability distribution estimated from 400 000
//! samples must agree with the analytic PMFs, and [`convolve`] itself is
//! cross-validated against a 100 000-sample sum of independent draws.
//!
//! # Tolerances
//!
//! Every tolerance is derived, not guessed, and every assertion prints the
//! observed error next to the allowed error:
//!
//! * **Probabilities** (robustness, CDF probes): a Monte-Carlo estimate of
//!   a probability `p` from `n` Bernoulli samples has standard error
//!   `sqrt(p(1-p)/n) <= 0.5/sqrt(n)`. We allow 6 sigma of the worst case:
//!   `TOL = 6 * 0.5 / sqrt(n)`, i.e. ~0.0047 at n = 400 000 and ~0.0095 at
//!   n = 100 000. A correct implementation fails a 6-sigma check with
//!   probability ~2e-9 per probe; a systematically wrong one exceeds it
//!   almost surely.
//! * **Means**: the availability mean is compared relatively at 1 %, which
//!   is > 6 sigma for every distribution used here (their coefficients of
//!   variation are all < 1 and n >= 100 000).

use hcsim_pmf::{convolve, queue_step, DropPolicy, Pmf, Time};
use hcsim_stats::{SeedSequence, Xoshiro256pp};

/// 6-sigma worst-case binomial tolerance for a probability estimated from
/// `n` samples (see the module docs for the derivation).
fn prob_tol(n: usize) -> f64 {
    6.0 * 0.5 / (n as f64).sqrt()
}

/// Samples a time from a normalized PMF via inverse CDF.
fn sample_pmf(pmf: &Pmf, rng: &mut Xoshiro256pp) -> Time {
    let u = rng.next_f64() * pmf.mass();
    let mut acc = 0.0;
    for imp in pmf.iter() {
        acc += imp.p;
        if u < acc {
            return imp.t;
        }
    }
    pmf.max_time()
}

struct McEstimate {
    robustness: f64,
    avail_mean: f64,
    avail_cdf_at: Box<dyn Fn(Time) -> f64>,
}

fn monte_carlo(
    avail: &Pmf,
    exec: &Pmf,
    deadline: Time,
    policy: DropPolicy,
    samples: usize,
    seed: u64,
) -> McEstimate {
    let mut rng = SeedSequence::new(seed).stream(0);
    let mut successes = 0usize;
    let mut free_times: Vec<Time> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let u = sample_pmf(avail, &mut rng);
        let e = sample_pmf(exec, &mut rng);
        let (free, on_time) = match policy {
            DropPolicy::None => (u + e, u + e <= deadline),
            DropPolicy::PendingOnly => {
                if u >= deadline {
                    (u, false) // dropped before starting
                } else {
                    (u + e, u + e <= deadline)
                }
            }
            DropPolicy::All => {
                if u >= deadline {
                    (u, false)
                } else if u + e <= deadline {
                    (u + e, true)
                } else {
                    (deadline, false) // evicted at δ
                }
            }
        };
        if on_time {
            successes += 1;
        }
        free_times.push(free);
    }
    free_times.sort_unstable();
    let n = free_times.len() as f64;
    let avail_mean = free_times.iter().map(|&t| t as f64).sum::<f64>() / n;
    let robustness = successes as f64 / n;
    let cdf = move |t: Time| free_times.partition_point(|&x| x <= t) as f64 / n;
    McEstimate { robustness, avail_mean, avail_cdf_at: Box::new(cdf) }
}

fn check_case(avail: &Pmf, exec: &Pmf, deadline: Time, policy: DropPolicy, seed: u64) {
    const SAMPLES: usize = 400_000;
    let tol = prob_tol(SAMPLES); // ~0.0047: 6 sigma at 400k Bernoulli samples
    const MEAN_REL_TOL: f64 = 0.01; // > 6 sigma for all cases used here

    let step = queue_step(avail, exec, deadline, policy);
    let mc = monte_carlo(avail, exec, deadline, policy, SAMPLES, seed);

    let err = (step.robustness - mc.robustness).abs();
    assert!(
        err < tol,
        "{policy:?} δ={deadline}: robustness analytic {} vs MC {} \
         (observed error {err:.6}, allowed {tol:.6})",
        step.robustness,
        mc.robustness
    );
    let mean_err = (step.availability.mean() - mc.avail_mean).abs() / mc.avail_mean.max(1.0);
    assert!(
        mean_err < MEAN_REL_TOL,
        "{policy:?} δ={deadline}: avail mean analytic {} vs MC {} \
         (observed rel. error {mean_err:.6}, allowed {MEAN_REL_TOL})",
        step.availability.mean(),
        mc.avail_mean
    );
    // Availability CDF agreement at several probe points.
    for probe in [deadline / 2, deadline, deadline + 5, deadline * 2] {
        let analytic = step.availability.cdf_at(probe);
        let sampled = (mc.avail_cdf_at)(probe);
        let err = (analytic - sampled).abs();
        assert!(
            err < tol,
            "{policy:?} δ={deadline}: availability CDF({probe}) analytic {analytic} \
             vs MC {sampled} (observed error {err:.6}, allowed {tol:.6})"
        );
    }
}

fn pmf(points: &[(Time, f64)]) -> Pmf {
    Pmf::from_points(points).unwrap()
}

#[test]
fn mc_validates_convolve_directly() {
    // Eq. 2 without any dropping: the completion-time PMF of a task behind
    // another is the distribution of the sum of two independent draws.
    const SAMPLES: usize = 100_000;
    let tol = prob_tol(SAMPLES); // ~0.0095: 6 sigma at 100k samples

    let a = pmf(&[(1, 0.15), (6, 0.2), (11, 0.3), (19, 0.2), (30, 0.15)]);
    let b = pmf(&[(2, 0.3), (5, 0.25), (9, 0.25), (16, 0.2)]);
    let analytic = convolve(&a, &b);

    let mut rng = SeedSequence::new(9001).stream(0);
    let mut sums: Vec<Time> =
        (0..SAMPLES).map(|_| sample_pmf(&a, &mut rng) + sample_pmf(&b, &mut rng)).collect();
    sums.sort_unstable();
    let n = sums.len() as f64;

    for probe in [3u64, 6, 11, 16, 20, 27, 35, 46] {
        let sampled = sums.partition_point(|&x| x <= probe) as f64 / n;
        let exact = analytic.cdf_at(probe);
        let err = (exact - sampled).abs();
        assert!(
            err < tol,
            "convolve CDF({probe}): analytic {exact} vs MC {sampled} \
             (observed error {err:.6}, allowed {tol:.6})"
        );
    }
    let mc_mean = sums.iter().map(|&t| t as f64).sum::<f64>() / n;
    let mean_err = (analytic.mean() - mc_mean).abs() / mc_mean;
    assert!(
        mean_err < 0.01,
        "convolve mean: analytic {} vs MC {mc_mean} \
         (observed rel. error {mean_err:.6}, allowed 0.01)",
        analytic.mean()
    );
}

#[test]
fn mc_validates_simple_straddling_case() {
    let avail = pmf(&[(3, 0.6), (8, 0.4)]);
    let exec = pmf(&[(2, 0.5), (6, 0.5)]);
    for (i, policy) in
        [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All].into_iter().enumerate()
    {
        check_case(&avail, &exec, 6, policy, 100 + i as u64);
    }
}

#[test]
fn mc_validates_paper_fig2_shapes() {
    let avail = pmf(&[(3, 0.25), (4, 0.50), (5, 0.25)]);
    let exec = pmf(&[(1, 0.50), (2, 0.25), (3, 0.25)]);
    for (i, policy) in
        [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All].into_iter().enumerate()
    {
        check_case(&avail, &exec, 7, policy, 200 + i as u64);
    }
}

#[test]
fn mc_validates_wide_distributions() {
    // Wider, irregular PMFs with the deadline cutting through both the
    // availability and the completion distributions.
    let avail = pmf(&[(1, 0.15), (6, 0.2), (11, 0.3), (19, 0.2), (30, 0.15)]);
    let exec = pmf(&[(2, 0.3), (5, 0.25), (9, 0.25), (16, 0.2)]);
    for (i, policy) in
        [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All].into_iter().enumerate()
    {
        for (j, deadline) in [8u64, 15, 24, 40].into_iter().enumerate() {
            check_case(&avail, &exec, deadline, policy, 300 + (i * 10 + j) as u64);
        }
    }
}

#[test]
fn mc_validates_hopeless_and_certain_extremes() {
    let avail = pmf(&[(10, 1.0)]);
    let exec = pmf(&[(5, 1.0)]);
    // Deadline before any possible start: drop (B/C) or late run (A).
    check_case(&avail, &exec, 8, DropPolicy::All, 400);
    check_case(&avail, &exec, 8, DropPolicy::None, 401);
    // Deadline after everything: certain success.
    check_case(&avail, &exec, 100, DropPolicy::All, 402);
}
