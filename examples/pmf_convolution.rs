//! Reproduces the worked examples of the paper's Figures 2 and 3 exactly:
//! the PET ⊛ PCT convolution, Eq. 1 robustness, and the effect of
//! completion-PMF skewness on the next task in queue.
//!
//! ```sh
//! cargo run --example pmf_convolution
//! ```

use hcsim::prelude::*;

fn show(label: &str, pmf: &Pmf) {
    let impulses: Vec<String> = pmf.iter().map(|i| format!("{}:{:.4}", i.t, i.p)).collect();
    println!("{label:<28} {{{}}}", impulses.join(", "));
}

fn main() {
    println!("=== Paper Fig. 2: convolving PET(i) with PCT(i-1) ===\n");
    // The machine's last queued task completes at 3, 4, or 5.
    let pct_prev = Pmf::from_points(&[(3, 0.25), (4, 0.50), (5, 0.25)]).unwrap();
    // Arriving task i executes in 1, 2, or 3 time units; deadline δ = 7.
    let pet = Pmf::from_points(&[(1, 0.50), (2, 0.25), (3, 0.25)]).unwrap();
    let pct = convolve(&pct_prev, &pet);
    show("PCT(i-1):", &pct_prev);
    show("PET(i):", &pet);
    show("PCT(i) = PCT(i-1) * PET(i):", &pct);
    println!("\nEq. 1 robustness p_ij(7) = CDF(7) = {:.4}  (paper: 0.9375)", pct.cdf_at(7));
    assert!((pct.cdf_at(7) - 0.9375).abs() < 1e-12);

    println!("\n=== Paper Fig. 3: skewness of task i vs robustness of task i+1 ===\n");
    // Task i+1 executes in 1, 2, or 3 units with deadline 5. Task i's
    // completion PMF has robustness 0.75 at δ_i = 3 in all three cases —
    // only its *shape* differs.
    let exec_next = Pmf::from_points(&[(1, 0.25), (2, 0.50), (3, 0.25)]).unwrap();
    let cases: [(&str, &[(Time, f64)]); 3] = [
        ("(a) no skew", &[(2, 0.25), (3, 0.50), (4, 0.25)]),
        ("(b) left skew", &[(2, 0.15), (3, 0.60), (4, 0.25)]),
        ("(c) right skew", &[(2, 0.50), (3, 0.25), (4, 0.25)]),
    ];
    for (label, points) in cases {
        let pct_i = Pmf::from_points(points).unwrap();
        let pct_next = convolve(&pct_i, &exec_next);
        println!(
            "{label:<15} skew {:+.3} | robustness(i)={:.2} | robustness(i+1)={:.4}",
            pct_i.bounded_skewness(),
            pct_i.cdf_at(3),
            pct_next.cdf_at(5),
        );
    }
    println!(
        "\npaper values: (a) 0.6875, (b) 0.6625, (c) 0.7500 — positively\n\
         skewed tasks propagate their head start to the tasks behind them,\n\
         which is why Eq. 7 protects them from dropping."
    );

    println!("\n=== Eq. 3-5: the same append under task-dropping policies ===\n");
    // A machine whose availability straddles the appended task's deadline.
    let avail = Pmf::from_points(&[(3, 0.6), (8, 0.4)]).unwrap();
    let exec = Pmf::from_points(&[(2, 1.0)]).unwrap();
    for policy in [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All] {
        let step = queue_step(&avail, &exec, 6, policy);
        show(&format!("{policy:?}: availability ->"), &step.availability);
    }
    println!(
        "\nunder PendingOnly/All the start at t=8 (past δ=6) becomes carry-over\n\
         mass instead of a doomed execution — dropping frees the machine early."
    );
}
