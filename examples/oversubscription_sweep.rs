//! Robustness-vs-load curves for every heuristic — the picture behind the
//! paper's statement that "the mechanism is more impactful under higher
//! oversubscription levels" (§VII-E).
//!
//! ```sh
//! cargo run --release --example oversubscription_sweep
//! ```

use hcsim::core::HeuristicKind;
use hcsim::exp::{FigOptions, Scenario};

fn main() {
    let opts = FigOptions { trials: 4, num_tasks: 400, seed: 3, threads: 2 };
    let levels = [10_000.0, 15_000.0, 19_000.0, 25_000.0, 30_000.0, 34_000.0];

    print!("{:<6}", "level");
    for kind in HeuristicKind::FIG7 {
        print!("{:>7}", kind.name());
    }
    println!();

    let mut pam_over_mm = Vec::new();
    for oversub in levels {
        print!("{:<6}", format!("{}k", oversub / 1000.0));
        let mut pam = 0.0;
        let mut mm = 0.0;
        for kind in HeuristicKind::FIG7 {
            let agg = Scenario::paper_default(kind, oversub).run(&opts);
            print!("{:>6.1}%", agg.robustness.mean);
            match kind {
                HeuristicKind::Pam => pam = agg.robustness.mean,
                HeuristicKind::Mm => mm = agg.robustness.mean,
                _ => {}
            }
        }
        println!();
        pam_over_mm.push((oversub, pam / mm.max(0.1)));
    }

    println!("\nPAM's relative advantage over MinMin grows with load:");
    for (level, ratio) in pam_over_mm {
        println!(
            "  {:>5}k  {:>5.2}x  {}",
            level / 1000.0,
            ratio,
            "=".repeat((ratio * 10.0).round() as usize)
        );
    }
}
