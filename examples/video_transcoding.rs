//! The §VII-G scenario: a live video-transcoding service on four
//! heterogeneous EC2 VM types, comparing PAMF against MinMin across
//! rising oversubscription — the workload that motivated the paper.
//!
//! ```sh
//! cargo run --release --example video_transcoding
//! ```

use hcsim::prelude::*;
use hcsim::workload::{TRANSCODE_OPS, TRANSCODE_VMS};

fn main() {
    let seeds = SeedSequence::new(7);
    let spec = transcode_system(6, &mut seeds.stream(1));

    println!("VM types and hourly prices:");
    for (m, vm) in TRANSCODE_VMS.iter().enumerate() {
        println!("  {vm:<28} ${:.3}/h", spec.prices.usd_per_hour(MachineId::from(m)));
    }
    println!("\nmean execution time (ms) per operation x VM (note the GPU affinity):");
    print!("  {:<20}", "");
    for vm in ["CPU", "Mem", "Gen", "GPU"] {
        print!("{vm:>8}");
    }
    println!();
    for (tt, op) in TRANSCODE_OPS.iter().enumerate() {
        print!("  {op:<20}");
        for m in 0..4usize {
            print!("{:>8.0}", spec.pet.mean_exec(TaskTypeId::from(tt), MachineId::from(m)));
        }
        println!();
    }

    println!("\nrobustness under rising oversubscription (one trial each):\n");
    println!("  {:<8} {:>8} {:>8}", "level", "PAMF", "MM");
    for oversub in [10_000.0, 12_500.0, 15_000.0, 17_500.0] {
        let workload = WorkloadGenerator::new(WorkloadConfig {
            num_tasks: 600,
            oversubscription: oversub,
            ..Default::default()
        });
        let trial = seeds.child(oversub as u64);
        let tasks = workload.generate(&spec, &mut trial.stream(0));

        let mut pamf = Pam::with_fairness(PruningConfig::default());
        let pamf_report =
            run_simulation(&spec, SimConfig::default(), &tasks, &mut pamf, &mut trial.stream(1));
        let mut mm = ScalarMapper::mm();
        let mm_report =
            run_simulation(&spec, SimConfig::default(), &tasks, &mut mm, &mut trial.stream(1));

        println!(
            "  {:<8} {:>7.1}% {:>7.1}%",
            format!("{:.1}k", oversub / 1000.0),
            pamf_report.metrics.pct_on_time,
            mm_report.metrics.pct_on_time,
        );
    }
    println!(
        "\nPAMF's probabilistic pruning skips transcodes that cannot make their\n\
         deadline (a dropped live-stream segment is worthless), keeping the\n\
         GPU free for the codec changes that actually need it."
    );
}
