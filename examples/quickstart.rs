//! Quickstart: build the paper's HC system, run one oversubscribed trial
//! with PAM and with MinMin, and compare robustness.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hcsim::prelude::*;

fn run_with<M: Mapper>(
    name: &str,
    mapper: &mut M,
    spec: &SystemSpec,
    tasks: &[Task],
    seeds: &SeedSequence,
) -> f64 {
    let report = run_simulation(spec, SimConfig::default(), tasks, mapper, &mut seeds.stream(99));
    println!(
        "{name:>5}: {:5.1}% on time | {:3} pruned | {:3} expired | cost ${:.4}",
        report.metrics.pct_on_time,
        report.metrics.outcomes.pruned,
        report.metrics.outcomes.expired_unstarted + report.metrics.outcomes.expired_executing,
        report.total_cost,
    );
    report.metrics.pct_on_time
}

fn main() {
    let seeds = SeedSequence::new(2019);

    // The §VI-A system: 12 SPECint-derived task types on 8 heterogeneous
    // machines, queue capacity 6 (including the executing slot).
    let spec = specint_system(6, &mut seeds.stream(0));
    println!(
        "system: {} machines x {} task types, grand mean exec {:.0} ms",
        spec.num_machines(),
        spec.num_task_types(),
        spec.pet.grand_mean_exec()
    );

    // An oversubscribed workload at the paper's 34k intensity level.
    let workload = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 800,
        oversubscription: 34_000.0,
        ..Default::default()
    });
    let tasks = workload.generate(&spec, &mut seeds.stream(1));
    println!(
        "workload: {} tasks arriving over {} ms (hard per-task deadlines)\n",
        tasks.len(),
        tasks.last().unwrap().arrival - tasks.first().unwrap().arrival
    );

    let mut pam = Pam::new(PruningConfig::default());
    let pam_score = run_with("PAM", &mut pam, &spec, &tasks, &seeds);

    let mut mm = ScalarMapper::mm();
    let mm_score = run_with("MM", &mut mm, &spec, &tasks, &seeds);

    println!(
        "\nprobabilistic pruning completed {:.1}x more tasks on time than MinMin",
        pam_score / mm_score.max(0.1)
    );
}
