//! Building your *own* HC system — the downstream-adoption path.
//!
//! Everything in the evaluation (SPECint machines, transcoding VMs) is
//! just data fed through the same public API shown here: describe your
//! machines, your task types, and a matrix of mean execution times; the
//! library builds the PET, and any mapper runs on top.
//!
//! The example models a small ML-inference edge cluster: three accelerator
//! tiers serving three model families under a latency SLO.
//!
//! ```sh
//! cargo run --release --example custom_system
//! ```

use hcsim::prelude::*;

fn main() {
    let seeds = SeedSequence::new(777);

    // Mean service times (ms): rows = model families, columns = machines.
    // The T4 crushes the vision transformer, the CPU box is competitive
    // only for the tiny tabular model — inconsistent heterogeneity.
    let means = vec![
        vec![40.0, 90.0, 260.0], // vision transformer
        vec![70.0, 60.0, 150.0], // speech model
        vec![30.0, 25.0, 35.0],  // tabular model
    ];
    let (pet, truth) = PetBuilder::new()
        .shape_range(2.0, 10.0) // bursty, input-dependent latency
        .samples_per_cell(500)
        .build(&means, &mut seeds.stream(0));

    let spec = SystemSpec {
        machines: vec![
            MachineSpec { name: "gpu-t4".into() },
            MachineSpec { name: "gpu-a2".into() },
            MachineSpec { name: "cpu-c6i".into() },
        ],
        task_types: vec![
            TaskTypeSpec { name: "vision".into() },
            TaskTypeSpec { name: "speech".into() },
            TaskTypeSpec { name: "tabular".into() },
        ],
        pet,
        truth,
        prices: PriceTable::new(vec![0.526, 0.75, 0.34]),
        queue_capacity: 4,
        coldstart: None,
    }
    .validated();

    // Requests with a hard latency SLO, arriving at ~2.5x cluster capacity.
    let workload = WorkloadConfig {
        num_tasks: 600,
        span: 60_000,
        oversubscription: 4_500.0,
        slack_beta: 1.5,
        arrival_variance_frac: 0.5, // bursty traffic
    };
    let tasks = WorkloadGenerator::new(workload).generate(&spec, &mut seeds.stream(1));

    println!("edge-inference cluster: 3 machines, 3 model families, hard SLOs\n");
    for (kind_name, report) in [
        ("PAM", {
            let mut m = Pam::new(PruningConfig::default());
            run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut m, &mut seeds.stream(2))
        }),
        ("MM", {
            let mut m = ScalarMapper::mm();
            run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut m, &mut seeds.stream(2))
        }),
    ] {
        println!(
            "{kind_name:>4}: {:5.1}% within SLO | {:3} pruned early | ${:.4} spent",
            report.metrics.pct_on_time, report.metrics.outcomes.pruned, report.total_cost
        );
        for (tt, pct) in report.metrics.per_type_pct.iter().enumerate() {
            if !pct.is_nan() {
                println!("        {:<8} {:5.1}%", spec.task_types[tt].name, pct);
            }
        }
    }
    println!(
        "\nthe same five calls work for any system: describe machines + task\n\
         types + mean latencies, build the PET, generate or import a trace,\n\
         pick a mapper, run_simulation."
    );
}
