//! PAMF's fairness mechanism (§V-D2) in action: per-type sufferage values
//! protect task types that keep getting pruned, trading a little overall
//! robustness for a much fairer completion mix (the paper's Fig. 6).
//!
//! ```sh
//! cargo run --release --example fairness
//! ```

use hcsim::prelude::*;

fn per_type_table(label: &str, metrics: &Metrics, spec: &SystemSpec) {
    println!("{label}");
    for (tt, pct) in metrics.per_type_pct.iter().enumerate() {
        let (ok, total) = metrics.per_type_counts[tt];
        if pct.is_nan() {
            continue;
        }
        println!(
            "    {:<18} {:>5.1}%  ({ok:>3}/{total:<3}) {}",
            spec.task_types[tt].name,
            pct,
            "*".repeat((pct / 4.0).round() as usize),
        );
    }
    println!(
        "    overall {:>5.1}% | per-type variance {:>7.1}\n",
        metrics.pct_on_time, metrics.type_variance
    );
}

fn main() {
    let seeds = SeedSequence::new(5);
    let spec = specint_system(6, &mut seeds.stream(0));
    let workload = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 800,
        oversubscription: 34_000.0,
        ..Default::default()
    });
    let tasks = workload.generate(&spec, &mut seeds.stream(1));

    // Plain PAM: maximizes robustness, may starve slow task types.
    let mut pam = Pam::new(PruningConfig::default());
    let pam_report =
        run_simulation(&spec, SimConfig::default(), &tasks, &mut pam, &mut seeds.stream(2));
    per_type_table("PAM (no fairness):", &pam_report.metrics, &spec);

    // PAMF with the paper's 5% fairness factor.
    let mut pamf = Pam::with_fairness(PruningConfig::default());
    let pamf_report =
        run_simulation(&spec, SimConfig::default(), &tasks, &mut pamf, &mut seeds.stream(2));
    per_type_table("PAMF (fairness factor 5%):", &pamf_report.metrics, &spec);

    // An aggressive fairness factor for contrast.
    let mut pamf25 =
        Pam::with_fairness(PruningConfig { fairness_factor: 0.25, ..PruningConfig::default() });
    let pamf25_report =
        run_simulation(&spec, SimConfig::default(), &tasks, &mut pamf25, &mut seeds.stream(2));
    per_type_table("PAMF (fairness factor 25%):", &pamf25_report.metrics, &spec);

    println!(
        "sufferage accounting relaxes the pruning thresholds of task types\n\
         that keep missing deadlines, flattening the per-type distribution\n\
         at a few points of overall robustness (§VII-D settles on 5%)."
    );
}
