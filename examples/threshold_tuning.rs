//! Mini version of the paper's Fig. 5: how the deferring and dropping
//! thresholds shape robustness, and why `defer >> drop` wins (§V-B2).
//!
//! ```sh
//! cargo run --release --example threshold_tuning
//! ```

use hcsim::exp::{FigOptions, Scenario};
use hcsim::prelude::*;

fn main() {
    let opts = FigOptions { trials: 4, num_tasks: 400, seed: 11, threads: 2 };

    println!("PAM @ 34k — robustness by (drop, defer) threshold pair:\n");
    println!("  {:>6} {:>6} {:>12}", "drop%", "defer%", "robustness");
    for (drop, defer) in [
        (0.25, 0.30),
        (0.25, 0.60),
        (0.25, 0.90),
        (0.50, 0.55),
        (0.50, 0.90),
        (0.75, 0.80),
        (0.75, 0.90),
    ] {
        let scenario = Scenario {
            label: format!("drop {drop} defer {defer}"),
            pruning: PruningConfig {
                drop_threshold: drop,
                defer_threshold: defer,
                ..PruningConfig::default()
            },
            ..Scenario::paper_default(HeuristicKind::Pam, 34_000.0)
        };
        let agg = scenario.run(&opts);
        println!(
            "  {:>6.0} {:>6.0} {:>9.1}%  {}",
            drop * 100.0,
            defer * 100.0,
            agg.robustness.mean,
            bar(agg.robustness.mean)
        );
    }

    println!(
        "\nthe paper's conclusion (§VII-C): a high deferring threshold does the\n\
         heavy lifting; once defer = 90%, the dropping threshold barely\n\
         matters. hcsim defaults to drop 50% / defer 90% accordingly."
    );
}

fn bar(pct: f64) -> String {
    "#".repeat((pct / 2.0).round() as usize)
}
