//! Integration tests of the §VIII preemption extension: PAM may pause an
//! executing task for an urgent arrival and resume it afterwards, guided
//! by residual execution PMFs.

use hcsim::prelude::*;

/// One machine, two task types: a long type (~200 ms) and a short urgent
/// type (~20 ms), both near-deterministic.
fn spec() -> SystemSpec {
    let mut rng = SeedSequence::new(1).stream(0);
    let (pet, truth) =
        PetBuilder::new().shape_range(400.0, 400.0).build(&[vec![200.0], vec![20.0]], &mut rng);
    SystemSpec {
        machines: vec![MachineSpec { name: "m".into() }],
        task_types: vec![
            TaskTypeSpec { name: "long".into() },
            TaskTypeSpec { name: "urgent".into() },
        ],
        pet,
        truth,
        prices: PriceTable::uniform(1, 1.0),
        queue_capacity: 6,
        coldstart: None,
    }
    .validated()
}

/// A long task starts at t=0 with a loose deadline; an urgent short task
/// arrives at t=10 with a deadline only immediate execution can meet.
fn workload() -> Vec<Task> {
    vec![
        Task { id: TaskId(0), type_id: TaskTypeId(0), arrival: 0, deadline: 10_000 },
        Task { id: TaskId(1), type_id: TaskTypeId(1), arrival: 10, deadline: 80 },
    ]
}

fn run_pam(preemption: bool) -> SimReport {
    let spec = spec();
    let tasks = workload();
    let mut mapper = Pam::new(PruningConfig { preemption, ..PruningConfig::default() });
    let mut rng = SeedSequence::new(2).stream(0);
    run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut rng)
}

#[test]
fn without_preemption_the_urgent_task_is_lost() {
    let report = run_pam(false);
    // The long task (~200 ms) blocks the only machine; queued behind it
    // the urgent task would finish near t≈220 ≫ 80, so PAM defers it and
    // it expires unmapped.
    assert_eq!(report.records[0].outcome, TaskOutcome::CompletedOnTime, "{:?}", report.records);
    assert_eq!(report.records[1].outcome, TaskOutcome::ExpiredUnstarted);
    assert!(report.records[1].machine.is_none(), "deferred, never mapped");
}

#[test]
fn with_preemption_both_tasks_succeed() {
    let report = run_pam(true);
    assert_eq!(
        report.records[1].outcome,
        TaskOutcome::CompletedOnTime,
        "urgent task must run immediately: {:?}",
        report.records
    );
    assert_eq!(
        report.records[0].outcome,
        TaskOutcome::CompletedOnTime,
        "the long task resumes and still makes its loose deadline: {:?}",
        report.records
    );
    // The long task ran in two segments; its recorded machine time covers
    // the whole execution (~200 ms), not just the final segment.
    let long = &report.records[0];
    assert!(long.machine_time >= 150, "machine time {}", long.machine_time);
    // Total busy time equals the sum of per-record machine time even with
    // the split segments.
    let total: Time = report.records.iter().map(|r| r.machine_time).sum();
    assert_eq!(report.cost.total_busy_time(), total);
}

#[test]
fn preemption_is_counted_in_instrumentation() {
    let spec = spec();
    let tasks = workload();
    let mut mapper = Pam::new(PruningConfig { preemption: true, ..PruningConfig::default() });
    let mut rng = SeedSequence::new(2).stream(0);
    let _ = run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut rng);
    let instr = Mapper::instrumentation(&mapper).unwrap();
    assert_eq!(instr.preemptions, 1);
}

#[test]
fn preemption_never_sacrifices_the_incumbent() {
    // Tighten the long task's deadline so it cannot afford the delay: the
    // residual check must veto the preemption and the urgent task is lost
    // instead of trading one success for another.
    let spec = spec();
    let tasks = vec![
        Task { id: TaskId(0), type_id: TaskTypeId(0), arrival: 0, deadline: 215 },
        Task { id: TaskId(1), type_id: TaskTypeId(1), arrival: 10, deadline: 80 },
    ];
    let mut mapper = Pam::new(PruningConfig { preemption: true, ..PruningConfig::default() });
    let mut rng = SeedSequence::new(2).stream(0);
    let report = run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut rng);
    assert_eq!(
        report.records[0].outcome,
        TaskOutcome::CompletedOnTime,
        "incumbent protected: {:?}",
        report.records
    );
    let instr = Mapper::instrumentation(&mapper).unwrap();
    assert_eq!(instr.preemptions, 0, "residual check must veto the preemption");
}

#[test]
fn preemption_off_by_default() {
    assert!(!PruningConfig::default().preemption);
}
