//! Workload traces survive CSV persistence, and replaying a loaded trace
//! reproduces the original simulation bit-for-bit.

use hcsim::prelude::*;
use hcsim::workload::{load_tasks_csv, save_tasks_csv};

#[test]
fn csv_roundtrip_preserves_simulation_results() {
    let seeds = SeedSequence::new(77);
    let spec = specint_system(6, &mut seeds.stream(0));
    let gen = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 250,
        oversubscription: 34_000.0,
        ..Default::default()
    });
    let tasks = gen.generate(&spec, &mut seeds.stream(1));

    let mut buf = Vec::new();
    save_tasks_csv(&tasks, &mut buf).expect("serialize");
    let loaded = load_tasks_csv(buf.as_slice()).expect("parse");
    assert_eq!(tasks, loaded);

    let run = |tasks: &[Task]| {
        let mut mapper = Pam::new(PruningConfig::default());
        run_simulation(&spec, SimConfig::untrimmed(), tasks, &mut mapper, &mut seeds.stream(2))
    };
    let original = run(&tasks);
    let replayed = run(&loaded);
    assert_eq!(original.records, replayed.records);
    assert_eq!(original.total_cost, replayed.total_cost);
}

#[test]
fn transcode_trace_roundtrip() {
    let seeds = SeedSequence::new(78);
    let spec = transcode_system(6, &mut seeds.stream(1));
    let gen = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 120,
        oversubscription: 15_000.0,
        ..Default::default()
    });
    let tasks = gen.generate(&spec, &mut seeds.stream(2));
    let mut buf = Vec::new();
    save_tasks_csv(&tasks, &mut buf).unwrap();
    assert_eq!(load_tasks_csv(buf.as_slice()).unwrap(), tasks);
    // Header + one line per task.
    assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 121);
}
