//! The paper's headline claims, verified at medium scale with multiple
//! trials. These are the properties EXPERIMENTS.md reports at full scale;
//! here they gate the test suite so a regression that breaks a *finding*
//! (not just a function) fails CI.
//!
//! Triage status (PR 1): all eight claim tests pass deterministically —
//! Fig. 4 (Schmitt trigger), Fig. 5 (defer threshold), Fig. 6 (fairness
//! variance), Fig. 7 (heuristic ordering at 19k/34k), Fig. 8 (cost per
//! on-time %), Fig. 9 (PAMF vs MM on transcoding), plus the two
//! oversubscription-trend claims. Policy for future PRs: a claim test must
//! either pass or carry `#[ignore = "awaits Fig./Eq. ..."]` with a one-line
//! reason naming the figure or equation it awaits — never be left silently
//! failing or weakened without a comment.

use hcsim::exp::{FigOptions, Scenario, SystemKind};
use hcsim::prelude::*;

fn opts(seed: u64) -> FigOptions {
    FigOptions { trials: 6, num_tasks: 350, seed, threads: 2 }
}

fn robustness(kind: HeuristicKind, oversub: f64, seed: u64) -> f64 {
    Scenario::paper_default(kind, oversub).run(&opts(seed)).robustness.mean
}

#[test]
fn fig7_ordering_under_heavy_oversubscription() {
    // PAM > MOC > {MSD, MMU}; PAM > MM at 34k.
    let pam = robustness(HeuristicKind::Pam, 34_000.0, 42);
    let moc = robustness(HeuristicKind::Moc, 34_000.0, 42);
    let mm = robustness(HeuristicKind::Mm, 34_000.0, 42);
    let msd = robustness(HeuristicKind::Msd, 34_000.0, 42);
    let mmu = robustness(HeuristicKind::Mmu, 34_000.0, 42);
    assert!(pam > moc + 5.0, "PAM {pam} vs MOC {moc}");
    assert!(pam > mm + 10.0, "PAM {pam} vs MM {mm}");
    assert!(moc > msd, "MOC {moc} vs MSD {msd}");
    assert!(mm > msd, "MM {mm} vs MSD {msd}");
    assert!(mm > mmu, "MM {mm} vs MMU {mmu}");
}

#[test]
fn robustness_degrades_with_oversubscription() {
    for kind in [HeuristicKind::Pam, HeuristicKind::Mm] {
        let lo = robustness(kind, 19_000.0, 43);
        let hi = robustness(kind, 34_000.0, 43);
        assert!(lo > hi, "{kind}: 19k {lo} should beat 34k {hi}");
    }
}

#[test]
fn pruning_gap_grows_with_oversubscription() {
    // §VII: "the mechanism is more impactful under higher oversubscription"
    // — the *relative* advantage over MinMin widens as load grows (both
    // absolute robustness values shrink).
    // A wide level spread (10k vs 34k) keeps the comparison out of trial
    // noise at this reduced test scale; EXPERIMENTS.md reports the full
    // 19k-vs-34k sweep.
    let ratio_10k = robustness(HeuristicKind::Pam, 10_000.0, 44)
        / robustness(HeuristicKind::Mm, 10_000.0, 44).max(0.1);
    let ratio_34k = robustness(HeuristicKind::Pam, 34_000.0, 44)
        / robustness(HeuristicKind::Mm, 34_000.0, 44).max(0.1);
    assert!(
        ratio_34k > ratio_10k,
        "relative pruning advantage should grow: 10k {ratio_10k:.2}x, 34k {ratio_34k:.2}x"
    );
}

#[test]
fn fig5_higher_defer_threshold_wins() {
    let lo = Scenario {
        label: "defer 55".into(),
        pruning: PruningConfig {
            drop_threshold: 0.5,
            defer_threshold: 0.55,
            ..PruningConfig::default()
        },
        ..Scenario::paper_default(HeuristicKind::Pam, 34_000.0)
    }
    .run(&opts(45));
    let hi = Scenario {
        label: "defer 90".into(),
        pruning: PruningConfig {
            drop_threshold: 0.5,
            defer_threshold: 0.90,
            ..PruningConfig::default()
        },
        ..Scenario::paper_default(HeuristicKind::Pam, 34_000.0)
    }
    .run(&opts(45));
    assert!(
        hi.robustness.mean > lo.robustness.mean,
        "defer 90% ({}) must beat defer 55% ({})",
        hi.robustness.mean,
        lo.robustness.mean
    );
}

#[test]
fn fig6_fairness_lowers_variance() {
    let strict = Scenario {
        label: "theta 0".into(),
        pruning: PruningConfig { fairness_factor: 0.0, ..PruningConfig::default() },
        ..Scenario::paper_default(HeuristicKind::Pamf, 34_000.0)
    }
    .run(&opts(46));
    let fair = Scenario {
        label: "theta 5".into(),
        pruning: PruningConfig { fairness_factor: 0.05, ..PruningConfig::default() },
        ..Scenario::paper_default(HeuristicKind::Pamf, 34_000.0)
    }
    .run(&opts(46));
    assert!(
        fair.type_variance.mean < strict.type_variance.mean,
        "fairness must reduce per-type variance: {} vs {}",
        fair.type_variance.mean,
        strict.type_variance.mean
    );
    // And costs some robustness (the paper's trade-off).
    assert!(
        fair.robustness.mean <= strict.robustness.mean + 2.0,
        "fairness should not increase robustness materially"
    );
}

#[test]
fn fig8_pruning_is_cheaper_per_completed_percent() {
    let pam = Scenario::paper_default(HeuristicKind::Pam, 34_000.0).run(&opts(47));
    let mm = Scenario::paper_default(HeuristicKind::Mm, 34_000.0).run(&opts(47));
    let pam_cost = pam.cost_per_percent.expect("PAM chartable").mean;
    let mm_cost = mm.cost_per_percent.expect("MM chartable").mean;
    assert!(
        mm_cost > pam_cost * 1.25,
        "MM cost/% ({mm_cost:.6}) should exceed PAM ({pam_cost:.6}) by well over 25%"
    );
}

#[test]
fn fig9_pamf_beats_mm_on_transcoding() {
    for oversub in [12_500.0, 15_000.0] {
        let pamf = Scenario {
            label: "pamf".into(),
            system: SystemKind::Transcode,
            ..Scenario::paper_default(HeuristicKind::Pamf, oversub)
        }
        .run(&opts(48));
        let mm = Scenario {
            label: "mm".into(),
            system: SystemKind::Transcode,
            ..Scenario::paper_default(HeuristicKind::Mm, oversub)
        }
        .run(&opts(48));
        assert!(
            pamf.robustness.mean > mm.robustness.mean,
            "@{oversub}: PAMF {} vs MM {}",
            pamf.robustness.mean,
            mm.robustness.mean
        );
    }
}

#[test]
fn schmitt_trigger_reduces_toggle_flapping() {
    // §V-C's stated purpose: prevent minor fluctuations around the toggle.
    let single = Scenario {
        label: "single".into(),
        pruning: PruningConfig { schmitt: false, lambda: 0.5, ..PruningConfig::default() },
        ..Scenario::paper_default(HeuristicKind::Pam, 34_000.0)
    }
    .run(&opts(49));
    let schmitt = Scenario {
        label: "schmitt".into(),
        pruning: PruningConfig { schmitt: true, lambda: 0.5, ..PruningConfig::default() },
        ..Scenario::paper_default(HeuristicKind::Pam, 34_000.0)
    }
    .run(&opts(49));
    let single_flaps = single.mean_toggle_transitions.expect("instrumented");
    let schmitt_flaps = schmitt.mean_toggle_transitions.expect("instrumented");
    assert!(
        schmitt_flaps <= single_flaps,
        "Schmitt ({schmitt_flaps}) must not flap more than single threshold ({single_flaps})"
    );
}
