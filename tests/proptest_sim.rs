//! Property-based whole-simulation invariants: random small systems and
//! workloads through every heuristic must always produce a consistent,
//! causally-sane report.

use hcsim::prelude::*;
use proptest::prelude::*;

/// Builds a random-but-valid system from generator parameters.
fn build_system(
    machines: usize,
    types: usize,
    queue_capacity: usize,
    mean_seed: u64,
) -> SystemSpec {
    let seeds = SeedSequence::new(mean_seed);
    let mut rng = seeds.stream(0);
    // Means in [20, 200], deterministic in the seed.
    let sm = SeedSequence::new(mean_seed ^ 0xABCD);
    let means: Vec<Vec<f64>> = (0..types)
        .map(|tt| {
            (0..machines)
                .map(|m| 20.0 + (sm.seed_for((tt * machines + m) as u64) % 180) as f64)
                .collect()
        })
        .collect();
    let (pet, truth) =
        PetBuilder::new().samples_per_cell(120).histogram_bins(16).build(&means, &mut rng);
    SystemSpec {
        machines: (0..machines).map(|m| MachineSpec { name: format!("m{m}") }).collect(),
        task_types: (0..types).map(|t| TaskTypeSpec { name: format!("t{t}") }).collect(),
        pet,
        truth,
        prices: PriceTable::uniform(machines, 1.0),
        queue_capacity,
        coldstart: None,
    }
    .validated()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn any_small_world_yields_consistent_reports(
        machines in 1usize..5,
        types in 1usize..5,
        queue_capacity in 1usize..7,
        n_tasks in 1usize..60,
        oversub in 4_000.0f64..60_000.0,
        seed in 0u64..1_000,
        heuristic_idx in 0usize..6,
    ) {
        let kind = HeuristicKind::FIG7[heuristic_idx];
        let spec = build_system(machines, types, queue_capacity, seed);
        let gen = WorkloadGenerator::new(WorkloadConfig {
            num_tasks: n_tasks,
            oversubscription: oversub,
            ..Default::default()
        });
        let seeds = SeedSequence::new(seed.wrapping_add(1));
        let tasks = gen.generate(&spec, &mut seeds.stream(0));
        let mut mapper = kind.build(PruningConfig::default());
        let report = run_simulation(
            &spec,
            SimConfig::untrimmed(),
            &tasks,
            &mut mapper,
            &mut seeds.stream(1),
        );

        // Exactly one terminal record per task, ids in order.
        prop_assert_eq!(report.records.len(), n_tasks);
        prop_assert_eq!(report.metrics.outcomes.total(), n_tasks);
        prop_assert_eq!(report.metrics.outcomes.unfinished, 0);
        for (i, rec) in report.records.iter().enumerate() {
            prop_assert_eq!(rec.task.id.index(), i);
            prop_assert!(rec.finished_at >= rec.task.arrival);
            if let Some(start) = rec.started_at {
                prop_assert!(start >= rec.task.arrival);
                prop_assert!(rec.finished_at >= start);
            }
            // Under DropPolicy::All nothing outlives its deadline.
            prop_assert!(
                rec.finished_at <= rec.task.deadline
                    || rec.outcome == TaskOutcome::ExpiredUnstarted,
                "record outlived deadline: {:?}", rec
            );
            if rec.outcome == TaskOutcome::CompletedOnTime {
                prop_assert!(rec.finished_at <= rec.task.deadline);
            }
        }

        // Cost is non-negative and consistent with busy time.
        let busy: Time = report.records.iter().map(|r| r.machine_time).sum();
        prop_assert_eq!(report.cost.total_busy_time(), busy);

        // Robustness bounded.
        prop_assert!((0.0..=100.0).contains(&report.metrics.pct_on_time));
    }

    #[test]
    fn workload_generation_is_sane(
        n_tasks in 1usize..200,
        oversub in 1_000.0f64..80_000.0,
        beta in 0.0f64..4.0,
        seed in 0u64..500,
    ) {
        let seeds = SeedSequence::new(seed);
        let spec = specint_system(6, &mut seeds.stream(0));
        let gen = WorkloadGenerator::new(WorkloadConfig {
            num_tasks: n_tasks,
            oversubscription: oversub,
            slack_beta: beta,
            ..Default::default()
        });
        let tasks = gen.generate(&spec, &mut seeds.stream(1));
        prop_assert_eq!(tasks.len(), n_tasks);
        for w in tasks.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
        for (i, t) in tasks.iter().enumerate() {
            prop_assert_eq!(t.id.index(), i);
            prop_assert!(t.deadline >= t.arrival);
            prop_assert!(t.type_id.index() < spec.num_task_types());
        }
    }
}
