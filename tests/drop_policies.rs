//! Ablation of the §IV dropping scenarios (A/B/C) at the whole-system
//! level: the same workload under `DropPolicy::{None, PendingOnly, All}`.

use hcsim::prelude::*;

fn run_policy(policy: DropPolicy, kind: HeuristicKind, seed: u64) -> SimReport {
    let seeds = SeedSequence::new(seed);
    let spec = specint_system(6, &mut seeds.stream(0));
    let gen = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 300,
        oversubscription: 34_000.0,
        ..Default::default()
    });
    let tasks = gen.generate(&spec, &mut seeds.stream(1));
    let mut mapper = kind.build(PruningConfig::default());
    let config = SimConfig { drop_policy: policy, trim: 0, ..SimConfig::default() };
    run_simulation(&spec, config, &tasks, &mut mapper, &mut seeds.stream(2))
}

#[test]
fn scenario_a_allows_late_completions_and_never_evicts() {
    let report = run_policy(DropPolicy::None, HeuristicKind::Mm, 1);
    assert!(report.metrics.outcomes.late > 0, "{:?}", report.metrics.outcomes);
    assert_eq!(report.metrics.outcomes.expired_executing, 0);
    // Every mapped task runs to completion: no expiry inside machine queues
    // after mapping... pending tasks are never culled under scenario A, so
    // the only expiries happen in the batch queue (machine: None).
    for rec in &report.records {
        if rec.outcome == TaskOutcome::ExpiredUnstarted {
            assert!(rec.machine.is_none(), "scenario A culled a mapped task: {rec:?}");
        }
    }
}

#[test]
fn scenario_b_culls_pending_but_completes_executing() {
    let report = run_policy(DropPolicy::PendingOnly, HeuristicKind::Mm, 2);
    assert_eq!(report.metrics.outcomes.expired_executing, 0, "B never evicts executing tasks");
    // Pending tasks do get culled: some expiries carry a machine id.
    let mapped_expiries = report
        .records
        .iter()
        .filter(|r| r.outcome == TaskOutcome::ExpiredUnstarted && r.machine.is_some())
        .count();
    assert!(mapped_expiries > 0, "scenario B should cull expired pending tasks");
}

#[test]
fn scenario_c_evicts_and_never_finishes_late() {
    let report = run_policy(DropPolicy::All, HeuristicKind::Mm, 3);
    assert!(report.metrics.outcomes.expired_executing > 0, "{:?}", report.metrics.outcomes);
    assert_eq!(report.metrics.outcomes.late, 0, "C evicts at the deadline");
    // Evictions are charged exactly up to the deadline.
    for rec in &report.records {
        if rec.outcome == TaskOutcome::ExpiredExecuting {
            assert_eq!(rec.finished_at, rec.task.deadline);
        }
    }
}

#[test]
fn dropping_policies_waste_less_machine_time() {
    // Scenario A finishes doomed work; C cuts it at the deadline. Busy time
    // must be ordered A >= B >= C for the deadline-blind baseline.
    let a = run_policy(DropPolicy::None, HeuristicKind::Mm, 4).cost.total_busy_time();
    let b = run_policy(DropPolicy::PendingOnly, HeuristicKind::Mm, 4).cost.total_busy_time();
    let c = run_policy(DropPolicy::All, HeuristicKind::Mm, 4).cost.total_busy_time();
    assert!(a >= b, "A busy {a} vs B busy {b}");
    assert!(b >= c, "B busy {b} vs C busy {c}");
}

#[test]
fn eviction_improves_robustness_for_deadline_blind_mapping() {
    // The core premise of §IV: time spent on doomed tasks cascades down
    // the queue. Cutting them (C) must beat running them out (A) for MM.
    let mut wins = 0;
    for seed in [5, 6, 7] {
        let a = run_policy(DropPolicy::None, HeuristicKind::Mm, seed);
        let c = run_policy(DropPolicy::All, HeuristicKind::Mm, seed);
        if c.metrics.pct_on_time >= a.metrics.pct_on_time {
            wins += 1;
        }
    }
    assert!(wins >= 2, "eviction should usually help MM under oversubscription ({wins}/3)");
}

#[test]
fn outcomes_partition_exactly_under_every_policy() {
    for policy in [DropPolicy::None, DropPolicy::PendingOnly, DropPolicy::All] {
        for kind in [HeuristicKind::Mm, HeuristicKind::Pam] {
            let report = run_policy(policy, kind, 8);
            assert_eq!(
                report.metrics.outcomes.total(),
                300,
                "{policy:?}/{kind}: {:?}",
                report.metrics.outcomes
            );
        }
    }
}
