//! Cross-crate integration: the full pipeline (stats → pmf → model →
//! workload → sim → core) holds its global invariants on realistic runs.

use hcsim::prelude::*;

fn setup(oversub: f64, n: usize, seed: u64) -> (SystemSpec, Vec<Task>, SeedSequence) {
    let seeds = SeedSequence::new(seed);
    let spec = specint_system(6, &mut seeds.stream(0));
    let gen = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: n,
        oversubscription: oversub,
        ..Default::default()
    });
    let tasks = gen.generate(&spec, &mut seeds.stream(1));
    (spec, tasks, seeds)
}

fn run(kind: HeuristicKind, oversub: f64, n: usize, seed: u64) -> SimReport {
    let (spec, tasks, seeds) = setup(oversub, n, seed);
    let mut mapper = kind.build(PruningConfig::default());
    run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut seeds.stream(2))
}

#[test]
fn every_heuristic_terminates_and_accounts_for_every_task() {
    for kind in HeuristicKind::FIG7 {
        let report = run(kind, 34_000.0, 300, 1);
        assert_eq!(report.records.len(), 300, "{kind}");
        assert_eq!(report.metrics.outcomes.total(), 300, "{kind}");
        assert_eq!(report.metrics.outcomes.unfinished, 0, "{kind}: tasks left unaccounted");
    }
}

#[test]
fn records_respect_causality() {
    for kind in [HeuristicKind::Pam, HeuristicKind::Mm, HeuristicKind::Moc] {
        let report = run(kind, 19_000.0, 300, 2);
        for rec in &report.records {
            assert!(rec.finished_at >= rec.task.arrival, "{kind}: finished before arrival");
            if let Some(start) = rec.started_at {
                assert!(start >= rec.task.arrival, "{kind}: started before arrival");
                assert!(rec.finished_at >= start, "{kind}: finished before start");
                assert_eq!(
                    rec.machine_time,
                    rec.finished_at - start,
                    "{kind}: machine time mismatch"
                );
                assert!(rec.machine.is_some(), "{kind}: started without a machine");
            } else {
                assert_eq!(rec.machine_time, 0, "{kind}: machine time without a start");
            }
            if rec.outcome == TaskOutcome::CompletedOnTime {
                assert!(rec.finished_at <= rec.task.deadline, "{kind}: late 'on-time' task");
            }
        }
    }
}

#[test]
fn cost_accounting_matches_records() {
    for kind in [HeuristicKind::Pam, HeuristicKind::Mm] {
        let report = run(kind, 34_000.0, 300, 3);
        let record_time: Time = report.records.iter().map(|r| r.machine_time).sum();
        assert_eq!(report.cost.total_busy_time(), record_time, "{kind}");
        assert!(report.total_cost > 0.0, "{kind}");
    }
}

#[test]
fn default_drop_policy_never_completes_late() {
    // Under DropPolicy::All a task still running at its deadline is
    // evicted, so CompletedLate must be impossible.
    for kind in HeuristicKind::FIG7 {
        let report = run(kind, 34_000.0, 250, 4);
        assert_eq!(report.metrics.outcomes.late, 0, "{kind}");
    }
}

#[test]
fn full_determinism_across_reruns() {
    for kind in [HeuristicKind::Pam, HeuristicKind::Pamf, HeuristicKind::Moc] {
        let a = run(kind, 34_000.0, 200, 5);
        let b = run(kind, 34_000.0, 200, 5);
        assert_eq!(a.records, b.records, "{kind}");
        assert_eq!(a.total_cost, b.total_cost, "{kind}");
        assert_eq!(a.mapping_events, b.mapping_events, "{kind}");
    }
}

#[test]
fn trimmed_metrics_are_a_subset() {
    let (spec, tasks, seeds) = setup(19_000.0, 400, 6);
    let mut mapper = HeuristicKind::Pam.build(PruningConfig::default());
    let trimmed = run_simulation(
        &spec,
        SimConfig::default(), // trim = 100
        &tasks,
        &mut mapper,
        &mut seeds.stream(2),
    );
    assert_eq!(trimmed.records.len(), 400);
    assert_eq!(trimmed.metrics.counted, 200);
    // Metrics recomputed from the middle records must agree.
    let manual_on_time = trimmed.records[100..300].iter().filter(|r| r.is_success()).count();
    assert_eq!(trimmed.metrics.outcomes.on_time, manual_on_time);
}

#[test]
fn per_type_percentages_are_consistent() {
    let report = run(HeuristicKind::Pamf, 34_000.0, 400, 7);
    let m = &report.metrics;
    let mut on_time = 0;
    let mut total = 0;
    for (tt, &(ok, cnt)) in m.per_type_counts.iter().enumerate() {
        on_time += ok;
        total += cnt;
        if cnt > 0 {
            assert!((m.per_type_pct[tt] - 100.0 * ok as f64 / cnt as f64).abs() < 1e-9);
        }
    }
    assert_eq!(on_time, m.outcomes.on_time);
    assert_eq!(total, m.counted);
}

#[test]
fn queue_capacity_is_never_exceeded() {
    // Indirect check: with capacity 1 per machine, at most 8 tasks can be
    // mapped at any time; the rest must wait in the batch. The sim must
    // still terminate and account for everything.
    let seeds = SeedSequence::new(8);
    let spec = specint_system(1, &mut seeds.stream(0));
    let gen = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 150,
        oversubscription: 19_000.0,
        ..Default::default()
    });
    let tasks = gen.generate(&spec, &mut seeds.stream(1));
    let mut mapper = HeuristicKind::Pam.build(PruningConfig::default());
    let report =
        run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut seeds.stream(2));
    assert_eq!(report.metrics.outcomes.total(), 150);
}

#[test]
fn pam_instrumentation_is_reported() {
    let (spec, tasks, seeds) = setup(34_000.0, 300, 9);
    let mut mapper = Pam::new(PruningConfig::default());
    let report =
        run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut seeds.stream(2));
    let instr = Mapper::instrumentation(&mapper).expect("PAM is instrumented");
    assert_eq!(instr.mapping_events, report.mapping_events);
    assert!(instr.events_dropping_engaged > 0, "34k must engage dropping");
    let pruned =
        report.records.iter().filter(|r| r.outcome == TaskOutcome::PrunedDropped).count() as u64;
    assert_eq!(instr.pruner_drops, pruned);
}

#[test]
fn baselines_report_no_instrumentation() {
    let mm = ScalarMapper::mm();
    assert!(Mapper::instrumentation(&mm).is_none());
}
