//! Integration tests of the §VIII future-work extension: approximate
//! computing — evictions that got far enough deliver degraded results.

use hcsim::prelude::*;

fn run_with_approx(min_progress: Option<f64>, seed: u64) -> SimReport {
    let seeds = SeedSequence::new(seed);
    let spec = specint_system(6, &mut seeds.stream(0));
    let gen = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 300,
        oversubscription: 34_000.0,
        ..Default::default()
    });
    let tasks = gen.generate(&spec, &mut seeds.stream(1));
    let mut mapper = ScalarMapper::mm(); // deadline-blind → plenty of evictions
    let config = SimConfig { approx_min_progress: min_progress, trim: 0, ..SimConfig::default() };
    run_simulation(&spec, config, &tasks, &mut mapper, &mut seeds.stream(2))
}

#[test]
fn disabled_by_default_no_approx_outcomes() {
    let report = run_with_approx(None, 1);
    assert_eq!(report.metrics.outcomes.approx, 0);
    assert_eq!(report.metrics.pct_useful, report.metrics.pct_on_time);
}

#[test]
fn zero_threshold_converts_every_eviction() {
    let with = run_with_approx(Some(0.0), 2);
    let without = run_with_approx(None, 2);
    // Same RNG streams → identical dynamics; every eviction becomes an
    // approximate completion.
    assert_eq!(with.metrics.outcomes.expired_executing, 0);
    assert_eq!(
        with.metrics.outcomes.approx, without.metrics.outcomes.expired_executing,
        "every eviction should be salvaged at threshold 0"
    );
    // Robustness itself is untouched — approx results are not on-time.
    assert_eq!(with.metrics.pct_on_time, without.metrics.pct_on_time);
    assert!(with.metrics.pct_useful >= with.metrics.pct_on_time);
}

#[test]
fn stricter_threshold_salvages_less() {
    let relaxed = run_with_approx(Some(0.25), 3);
    let strict = run_with_approx(Some(0.9), 3);
    assert!(
        relaxed.metrics.outcomes.approx >= strict.metrics.outcomes.approx,
        "relaxed {} vs strict {}",
        relaxed.metrics.outcomes.approx,
        strict.metrics.outcomes.approx
    );
    // Partition invariant: approx + expired_executing is constant.
    assert_eq!(
        relaxed.metrics.outcomes.approx + relaxed.metrics.outcomes.expired_executing,
        strict.metrics.outcomes.approx + strict.metrics.outcomes.expired_executing,
    );
}

#[test]
fn approx_records_are_evictions_at_deadline() {
    let report = run_with_approx(Some(0.5), 4);
    let approx: Vec<_> =
        report.records.iter().filter(|r| r.outcome == TaskOutcome::CompletedApprox).collect();
    assert!(!approx.is_empty(), "34k + MM should produce salvageable evictions");
    for rec in approx {
        assert_eq!(rec.finished_at, rec.task.deadline, "approx results arrive at the deadline");
        let started = rec.started_at.expect("approx implies execution");
        let progress_time = rec.task.deadline - started;
        assert_eq!(rec.machine_time, progress_time);
        assert!(rec.machine_time > 0);
    }
}

#[test]
fn useful_metric_is_monotone_in_threshold() {
    let mut last_useful = f64::INFINITY;
    for min in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let useful = run_with_approx(Some(min), 5).metrics.pct_useful;
        assert!(
            useful <= last_useful + 1e-9,
            "useful% must not grow with a stricter threshold: {useful} after {last_useful}"
        );
        last_useful = useful;
    }
}
