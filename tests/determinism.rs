//! Seed-determinism guarantees: the whole pipeline — system construction,
//! workload generation, and simulation — is a pure function of the
//! `SeedSequence`. Future parallelism or refactor PRs must keep these
//! green; any scheduling- or iteration-order-dependent behaviour shows up
//! here as a diff between two identically-seeded runs.

use hcsim::prelude::*;

/// Runs the full pipeline once and renders the report in a byte-comparable
/// form: every metric plus every per-task record, via `Debug`.
fn run_once(master_seed: u64, kind: HeuristicKind) -> String {
    let seeds = SeedSequence::new(master_seed);
    let spec = specint_system(6, &mut seeds.stream(0));
    let workload = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 200,
        oversubscription: 19_000.0,
        ..Default::default()
    });
    let tasks = workload.generate(&spec, &mut seeds.stream(1));
    let mut mapper = kind.build(PruningConfig::default());
    let report =
        run_simulation(&spec, SimConfig::untrimmed(), &tasks, &mut mapper, &mut seeds.stream(2));
    format!("{:?}\n{:?}\n{:?}", report.metrics, report.records, report.cost)
}

#[test]
fn identical_seeds_give_byte_identical_reports() {
    for kind in HeuristicKind::FIG7 {
        let a = run_once(42, kind);
        let b = run_once(42, kind);
        assert_eq!(a, b, "two runs with SeedSequence::new(42) diverged under {kind:?}");
    }
}

#[test]
fn different_seeds_actually_change_the_world() {
    // Guards against the pipeline silently ignoring its seed.
    let a = run_once(42, HeuristicKind::Pam);
    let b = run_once(43, HeuristicKind::Pam);
    assert_ne!(a, b, "changing the master seed changed nothing");
}

#[test]
fn workload_generation_is_seed_deterministic() {
    let seeds = SeedSequence::new(7);
    let spec = specint_system(6, &mut seeds.stream(0));
    let gen = WorkloadGenerator::new(WorkloadConfig {
        num_tasks: 500,
        oversubscription: 34_000.0,
        ..Default::default()
    });
    let a = gen.generate(&spec, &mut seeds.stream(1));
    let b = gen.generate(&spec, &mut seeds.stream(1));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
