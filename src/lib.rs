//! # hcsim — Probabilistic Task Pruning for Robust Dynamic Resource Allocation
//!
//! A full reproduction of *"Robust Dynamic Resource Allocation via
//! Probabilistic Task Pruning in Heterogeneous Computing Systems"*
//! (Gentry, Denninnart, Amini Salehi — IPPS 2019, arXiv:1901.09312), built
//! as a workspace of focused crates re-exported here:
//!
//! * [`stats`] — gamma/normal sampling, histograms, Eq. 6 skewness,
//!   Student-t confidence intervals.
//! * [`pmf`] — discrete impulse PMFs; Eq. 1 robustness; Eq. 2–5
//!   completion-time convolution under task-dropping policies.
//! * [`model`] — tasks, machines, the PET matrix, ground truth, prices.
//! * [`workload`] — the SPECint-derived and video-transcoding systems and
//!   the §VI-B workload generator.
//! * [`sim`] — the event-driven oversubscribed-HC-system simulator and the
//!   [`Mapper`](sim::Mapper) trait.
//! * [`core`] — the paper's contribution: the pruning mechanism (Eq. 7–8)
//!   and the PAM/PAMF heuristics plus MM/MSD/MMU/MOC baselines.
//! * [`exp`] — the figure-regeneration harness behind the `hcsim-exp` CLI.
//!
//! ## Quickstart
//!
//! ```
//! use hcsim::prelude::*;
//!
//! // Build the paper's 12-task-type × 8-machine system and a bursty
//! // oversubscribed workload.
//! let seeds = SeedSequence::new(42);
//! let spec = specint_system(6, &mut seeds.stream(0));
//! let workload = WorkloadGenerator::new(WorkloadConfig {
//!     num_tasks: 150,
//!     oversubscription: 19_000.0,
//!     ..Default::default()
//! });
//! let tasks = workload.generate(&spec, &mut seeds.stream(1));
//!
//! // Map it with the Pruning-Aware Mapper and simulate.
//! let mut pam = Pam::new(PruningConfig::default());
//! let report = run_simulation(
//!     &spec,
//!     SimConfig::untrimmed(),
//!     &tasks,
//!     &mut pam,
//!     &mut seeds.stream(2),
//! );
//! println!("robustness: {:.1}%", report.metrics.pct_on_time);
//! assert!(report.metrics.pct_on_time > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hcsim_core as core;
pub use hcsim_exp as exp;
pub use hcsim_model as model;
pub use hcsim_pmf as pmf;
pub use hcsim_sim as sim;
pub use hcsim_stats as stats;
pub use hcsim_workload as workload;

/// The commonly-needed surface in one import.
pub mod prelude {
    pub use hcsim_core::{
        HeuristicKind, Moc, OversubscriptionDetector, Pam, Pruner, PruningConfig, ScalarMapper,
        SufferageTable,
    };
    pub use hcsim_model::{
        ChurnEvent, ChurnKind, ChurnTrace, MachineId, MachineSpec, PetBuilder, PetMatrix,
        PriceTable, SystemSpec, Task, TaskId, TaskOutcome, TaskRecord, TaskTypeId, TaskTypeSpec,
        Time,
    };
    pub use hcsim_pmf::{convolve, queue_step, DropPolicy, Pmf};
    pub use hcsim_sim::{
        run_simulation, run_simulation_with_churn, MapContext, Mapper, Metrics, SimConfig,
        SimReport,
    };
    pub use hcsim_stats::{mean_ci95, Gamma, Histogram, SeedSequence};
    pub use hcsim_workload::{
        cluster_churn, specint_cluster, specint_system, transcode_system, ChurnConfig,
        WorkloadConfig, WorkloadGenerator,
    };
}
